"""Open-loop load shapes and drivers for the serving frontend.

Closed-loop benchmarks (issue a batch, wait, issue the next) cannot see
queueing delay: the client slows down exactly when the server does, so
measured latency stays flat right up to the cliff — the *coordinated
omission* trap. Real traffic is open-loop: arrivals are scheduled by the
outside world and keep coming whether or not the service is keeping up.
This module generates such traffic and drives the sharded frontend with
it two ways:

* :func:`generate_trace` — a deterministic arrival schedule with the
  three shapes production traces exhibit: **Poisson** base arrivals,
  **heavy-tailed ON/OFF bursts** (Pareto ON durations — C-Koordinator's
  microservice bursts), and **Zipf hot-key skew** over workloads (a few
  services dominate query volume).
* :func:`drive_open_loop` — wall-clock driver against a live
  :class:`~repro.serving.ShardedPredictionService`: submits at the
  scheduled instants, backs off on :class:`~repro.serving.ShardBusy`,
  and measures each query's latency from its *scheduled* arrival (so
  time spent rejected-and-retrying is charged to the query, not hidden).
* :func:`simulate_open_loop` — the same admission/queueing discipline
  evaluated in **virtual time**: per-query service times are an input
  (measured live from the real service by the benchmark), so the
  committed tail-latency numbers are deterministic and the shard-scaling
  ratios machine-portable instead of hostage to the CI runner's core
  count. The simulator mirrors the router faithfully: hashed routing via
  :func:`~repro.serving.shard_ids`, per-shard FIFO service, bounded
  in-flight admission with EWMA-free retry-after, open-loop latency
  accounting.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from ..eval.reporting import tail_percentiles
from .sharded import ShardBusy, ShardedPredictionService, shard_ids

__all__ = [
    "OpenLoopConfig",
    "OpenLoopResult",
    "QueryTrace",
    "drive_open_loop",
    "generate_trace",
    "simulate_open_loop",
    "zipf_weights",
]


@dataclass(frozen=True)
class OpenLoopConfig:
    """One open-loop traffic shape.

    ``burst_multiplier == 1`` degenerates to a pure Poisson process;
    ``zipf_s == 0`` to uniform workload popularity. The defaults for the
    burst process give ON windows with infinite-variance durations
    (Pareto shape 1.5) — single bursts occasionally span a large
    fraction of the run, which is exactly what stresses a bounded queue.
    """

    rate: float  #: base arrival rate, queries/second
    duration: float  #: trace horizon, seconds
    seed: int = 0
    zipf_s: float = 0.0  #: workload popularity exponent (0 = uniform)
    burst_multiplier: float = 1.0  #: ON-window rate = multiplier × rate
    burst_on_alpha: float = 1.5  #: Pareto shape of ON durations
    burst_on_scale: float = 0.05  #: minimum ON duration, seconds
    burst_off_mean: float = 0.2  #: mean exponential OFF gap, seconds
    epsilon: float = 0.05  #: ε every query asks its bound at

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.burst_multiplier < 1:
            raise ValueError("burst_multiplier must be >= 1")


@dataclass(frozen=True)
class QueryTrace:
    """A materialized arrival schedule: when each query lands, and what
    it asks. Isolation queries only — tail latency under load is a
    queueing phenomenon, and a fixed query shape keeps per-query service
    time comparable across the grid."""

    arrivals: np.ndarray  #: sorted arrival instants, seconds from 0
    workloads: np.ndarray
    platforms: np.ndarray
    epsilon: float
    config: OpenLoopConfig

    @property
    def n(self) -> int:
        return len(self.arrivals)

    @property
    def offered_rate(self) -> float:
        """Realized arrivals/second over the trace horizon."""
        return self.n / self.config.duration


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Bounded-Zipf popularity over ``n`` keys: ``w_k ∝ 1/(k+1)^s``.

    Normalized; ``s == 0`` is uniform. Rank 0 is the hottest key — the
    trace generator maps ranks through a seeded permutation so the hot
    set is not always the lowest workload ids.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), s)
    return weights / weights.sum()


def _on_intervals(config: OpenLoopConfig, rng: np.random.Generator) -> np.ndarray:
    """Alternating OFF/ON boundaries covering the trace horizon.

    Returns a flat, sorted array ``[on0_start, on0_end, on1_start, ...]``
    so membership testing is one ``searchsorted`` parity check.
    """
    bounds = []
    t = 0.0
    while t < config.duration:
        t += rng.exponential(config.burst_off_mean)  # OFF gap
        on = config.burst_on_scale * (1.0 + rng.pareto(config.burst_on_alpha))
        bounds.extend((t, t + on))
        t += on
    return np.asarray(bounds)


def generate_trace(
    config: OpenLoopConfig, n_workloads: int, n_platforms: int
) -> QueryTrace:
    """Materialize one deterministic open-loop arrival trace.

    The doubly-stochastic arrival process is built by thinning: generate
    a homogeneous Poisson stream at the peak rate
    (``rate × burst_multiplier``), then keep each arrival with
    probability ``rate(t) / peak`` — the textbook construction for a
    piecewise-constant intensity, here driven by the heavy-tailed ON/OFF
    envelope. Everything derives from ``config.seed``, so the same
    config replays the same trace bit-for-bit on any machine.
    """
    rng = np.random.default_rng(config.seed)
    peak = config.rate * config.burst_multiplier

    # Homogeneous candidates at the peak rate (generated in chunks —
    # the count is random, ~peak × duration).
    arrivals = []
    t = 0.0
    while t < config.duration:
        gaps = rng.exponential(1.0 / peak, size=1024)
        times = t + np.cumsum(gaps)
        arrivals.append(times)
        t = float(times[-1])
    candidates = np.concatenate(arrivals)
    candidates = candidates[candidates < config.duration]

    if config.burst_multiplier > 1.0:
        bounds = _on_intervals(config, rng)
        in_on = (np.searchsorted(bounds, candidates) % 2) == 1
        accept_p = np.where(in_on, 1.0, 1.0 / config.burst_multiplier)
        keep = rng.random(len(candidates)) < accept_p
        times = candidates[keep]
    else:
        times = candidates

    n = len(times)
    if config.zipf_s > 0:
        ranks = rng.choice(
            n_workloads, size=n, p=zipf_weights(n_workloads, config.zipf_s)
        )
        perm = rng.permutation(n_workloads)
        workloads = perm[ranks]
    else:
        workloads = rng.integers(0, n_workloads, size=n)
    platforms = rng.integers(0, n_platforms, size=n)
    return QueryTrace(
        arrivals=times,
        workloads=workloads.astype(np.intp),
        platforms=platforms.astype(np.intp),
        epsilon=config.epsilon,
        config=config,
    )


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop run (simulated or wall-clock).

    ``latencies`` holds completed queries only, each measured from its
    *scheduled* arrival — a query that was rejected twice before
    admission carries its full retry delay.
    """

    latencies: np.ndarray  #: seconds, one entry per completed query
    offered: int  #: queries the trace scheduled
    completed: int
    dropped: int  #: gave up after max_retries rejections
    rejections: int  #: ShardBusy events (retries included)
    makespan: float  #: first scheduled arrival → last completion, seconds
    n_shards: int

    @property
    def throughput(self) -> float:
        """Completed queries per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    @property
    def reject_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.rejections / self.offered

    def percentiles(self) -> dict[str, float]:
        """p50/p99/p999 completion latency (NaN where under-sampled)."""
        return tail_percentiles(self.latencies)


def simulate_open_loop(
    trace: QueryTrace,
    service_times: np.ndarray | float,
    n_shards: int,
    queue_depth: int = 64,
    max_retries: int = 10,
) -> OpenLoopResult:
    """Deterministic virtual-time replay of the router's discipline.

    Each shard is a FIFO single server (the worker loop handles one
    message at a time); admission rejects when a shard's in-flight count
    reaches ``queue_depth``, exactly as
    :meth:`ShardedPredictionService.submit` does, and a rejected query
    re-offers after ``backlog × mean-service`` — the router's
    ``retry_after`` estimate with the EWMA replaced by the true mean,
    which the virtual-time setting knows exactly.

    ``service_times`` is per-query seconds (scalar broadcasts): the
    benchmark measures these on the *real* :class:`PredictionService`
    and feeds them in, so the simulated tails are calibrated to the
    machine while arrival/queueing arithmetic stays deterministic.
    """
    n = trace.n
    tau = np.broadcast_to(np.asarray(service_times, dtype=float), (n,))
    mean_tau = float(tau.mean()) if n else 0.0
    shards = shard_ids(trace.workloads, trace.platforms, n_shards)

    free_at = np.zeros(n_shards)
    inflight = np.zeros(n_shards, dtype=np.intp)
    completions: list[list[float]] = [[] for _ in range(n_shards)]

    # Event heap: (time, seq, query index, attempt). seq breaks ties
    # deterministically (heapq would otherwise compare payloads).
    events: list[tuple[float, int, int, int]] = [
        (float(trace.arrivals[i]), i, i, 0) for i in range(n)
    ]
    heapq.heapify(events)
    seq = n

    latencies = np.full(n, np.nan)
    rejections = 0
    dropped = 0
    last_completion = 0.0
    while events:
        now, _, qi, attempt = heapq.heappop(events)
        shard = int(shards[qi])
        done = completions[shard]
        while done and done[0] <= now:
            heapq.heappop(done)
            inflight[shard] -= 1
        if inflight[shard] >= queue_depth:
            rejections += 1
            if attempt >= max_retries:
                dropped += 1
                continue
            retry_after = max(float(inflight[shard]) * mean_tau, 1e-6)
            heapq.heappush(events, (now + retry_after, seq, qi, attempt + 1))
            seq += 1
            continue
        start = max(now, free_at[shard])
        completion = start + float(tau[qi])
        free_at[shard] = completion
        inflight[shard] += 1
        heapq.heappush(done, completion)
        latencies[qi] = completion - float(trace.arrivals[qi])
        last_completion = max(last_completion, completion)

    completed = int(np.count_nonzero(~np.isnan(latencies)))
    first = float(trace.arrivals[0]) if n else 0.0
    return OpenLoopResult(
        latencies=latencies[~np.isnan(latencies)],
        offered=n,
        completed=completed,
        dropped=dropped,
        rejections=rejections,
        makespan=max(last_completion - first, 0.0),
        n_shards=n_shards,
    )


def drive_open_loop(
    service: ShardedPredictionService,
    trace: QueryTrace,
    max_retries: int = 10,
    settle_timeout: float = 60.0,
) -> OpenLoopResult:
    """Drive a live sharded service with ``trace`` in wall-clock time.

    The CI smoke path and ``repro bench-serve --open-loop``: submits
    each query at its scheduled instant (never waiting for earlier
    completions — open loop), converts :class:`ShardBusy` into a delayed
    re-offer, and drains completions between arrivals so latencies are
    timestamped promptly.
    """
    n = trace.n
    start = time.monotonic()
    pending: list[tuple[float, int, int, int]] = [
        (float(trace.arrivals[i]), i, i, 0) for i in range(n)
    ]
    heapq.heapify(pending)
    seq = n
    tickets: dict[int, int] = {}  # ticket -> query index
    latencies = np.full(n, np.nan)
    rejections = 0
    dropped = 0
    last_completion = 0.0

    def drain() -> None:
        nonlocal last_completion
        now = time.monotonic() - start
        for response in service.gather_ready():
            qi = tickets.pop(response.ticket)
            latencies[qi] = now - float(trace.arrivals[qi])
            last_completion = max(last_completion, now)

    while pending or tickets:
        drain()
        now = time.monotonic() - start
        if pending and pending[0][0] <= now:
            due, _, qi, attempt = heapq.heappop(pending)
            try:
                ticket = service.submit(
                    int(trace.workloads[qi]),
                    int(trace.platforms[qi]),
                    (),
                    trace.epsilon,
                )
            except ShardBusy as busy:
                rejections += 1
                if attempt >= max_retries:
                    dropped += 1
                else:
                    heapq.heappush(
                        pending,
                        (now + busy.retry_after, seq, qi, attempt + 1),
                    )
                    seq += 1
            else:
                tickets[ticket] = qi
            continue
        if not pending and tickets:
            if now > float(trace.arrivals[-1]) + settle_timeout:
                raise TimeoutError(
                    f"{len(tickets)} queries unresolved "
                    f"{settle_timeout}s past the last arrival"
                )
        sleep_for = 0.0005
        if pending:
            sleep_for = min(max(pending[0][0] - now, 0.0), 0.01)
        if sleep_for:
            time.sleep(sleep_for)

    drain()
    completed = int(np.count_nonzero(~np.isnan(latencies)))
    first = float(trace.arrivals[0]) if n else 0.0
    return OpenLoopResult(
        latencies=latencies[~np.isnan(latencies)],
        offered=n,
        completed=completed,
        dropped=dropped,
        rejections=rejections,
        makespan=max(last_completion - first, 0.0),
        n_shards=service.n_shards,
    )
