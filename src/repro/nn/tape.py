"""Tape-structure caching: record an autograd step once, replay it.

The training loop builds an identical graph every step whenever batch
shapes repeat (the dense path repeats for the whole run; the sparse path
repeats whenever ``plan_sparse_batch`` yields the same unique-row counts).
Rebuilding that graph costs thousands of Python closure allocations per
step. This module removes the rebuild:

* :class:`TapeRecorder` — installed around graph construction, it captures
  every op output in creation order. Ops additionally store a ``_replay``
  closure that recomputes their forward value *in place* from the parents'
  current buffers (see :meth:`repro.nn.Tensor._make`).
* :class:`TapeProgram` — a recorded step bound to named input buffers.
  :meth:`TapeProgram.replay` re-runs the forward closures in creation
  order and the backward closures in reverse (LIFO), which is bitwise
  identical to a fresh :meth:`~repro.nn.Tensor.backward` because
  ``backward`` also schedules by creation order (``Tensor._seq``).
* :class:`TapeCache` — signature-keyed LRU of programs with hit/miss/
  invalidation counters.
* :class:`ScratchArena` — named preallocated buffers for the fused tower
  kernels (:mod:`repro.nn.fused`); one live buffer per (tag, shape,
  dtype), reallocated only when a tag's shape changes.

A program is *replayable* only if every recorded op supplied a replay
closure; ops whose structure is data-dependent (``where`` masks, fancy
indexing) poison the tape, and the cache refuses to store it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Mapping

import numpy as np

from .tensor import Tensor, _pop_tape, _push_tape

__all__ = ["ScratchArena", "TapeRecorder", "TapeProgram", "TapeCache"]


class ScratchArena:
    """Named reusable buffers: ``get(tag, shape, dtype)`` with realloc-on-
    shape-change semantics.

    Each tag owns exactly one live buffer, so memory is bounded by the
    number of distinct tags (one per fused-kernel operand), not by the
    number of distinct batch shapes seen. A recorded program keeps
    references to the buffers it captured; reallocating a tag for a new
    shape orphans the old buffer without invalidating the program.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.reallocations = 0

    def get(self, tag: str, shape: tuple[int, ...], dtype: Any) -> np.ndarray:
        dt = np.dtype(dtype)
        buf = self._buffers.get(tag)
        if buf is None or buf.shape != shape or buf.dtype != dt:
            if buf is not None:
                self.reallocations += 1
            buf = np.empty(shape, dtype=dt)
            self._buffers[tag] = buf
        return buf

    def clear(self) -> None:
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)


class TapeRecorder:
    """Context manager that records every op output created inside it."""

    def __init__(self) -> None:
        self.nodes: list[Tensor] = []
        self._previous: Any = None

    def record(self, node: Tensor) -> None:
        self.nodes.append(node)

    @property
    def replayable(self) -> bool:
        """True when every recorded op can recompute itself in place.

        Evaluated lazily (ops assign ``_replay`` after ``_make`` returns),
        so only meaningful once recording has finished.
        """
        return all(t._replay is not None for t in self.nodes)

    def __enter__(self) -> "TapeRecorder":
        self._previous = _push_tape(self)
        return self

    def __exit__(self, *exc: object) -> bool:
        _pop_tape(self._previous)
        return False


class TapeProgram:
    """A recorded step: named input buffers + the taped op list + loss.

    ``inputs`` maps names to the *exact* ndarray buffers the recorded graph
    captured (index arrays, masks, targets, coefficients). :meth:`bind`
    copies fresh step data into them; :meth:`replay` then recomputes every
    op forward in creation order and runs the backward closures LIFO.
    Parameter gradients accumulate exactly as a fresh backward would —
    callers zero them first (``optimizer.zero_grad()``), as usual.
    """

    def __init__(
        self,
        loss: Tensor,
        nodes: list[Tensor],
        inputs: dict[str, np.ndarray],
    ) -> None:
        if loss.data.shape != ():
            raise ValueError("TapeProgram expects a scalar loss")
        self.loss = loss
        self.nodes = nodes
        self.inputs = inputs
        self._seed = np.ones_like(loss.data)

    @property
    def replayable(self) -> bool:
        return all(t._replay is not None for t in self.nodes)

    def bind(self, values: Mapping[str, np.ndarray]) -> None:
        """Copy fresh step data into the captured input buffers."""
        for name, value in values.items():
            buf = self.inputs[name]
            if buf.shape != np.shape(value):
                raise ValueError(
                    f"input {name!r}: shape {np.shape(value)} does not match "
                    f"recorded buffer {buf.shape}"
                )
            np.copyto(buf, value)

    def replay(self) -> float:
        """Recompute forward in place, backpropagate, return the loss."""
        nodes = self.nodes
        for t in nodes:
            t.grad = None
        for t in nodes:
            replay = t._replay
            if replay is not None:
                replay()
        loss = self.loss
        loss._accumulate(self._seed.copy(), own=True)
        for t in reversed(nodes):
            if t._backward is not None and t.grad is not None:
                t._backward(t.grad)
        return float(loss.data)


class TapeCache:
    """Signature-keyed LRU cache of :class:`TapeProgram` with stats."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._programs: OrderedDict[Hashable, TapeProgram] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.rejected = 0

    def get(self, signature: Hashable) -> TapeProgram | None:
        program = self._programs.get(signature)
        if program is None:
            self.misses += 1
            return None
        self._programs.move_to_end(signature)
        self.hits += 1
        return program

    def put(self, signature: Hashable, program: TapeProgram) -> bool:
        """Store a program; refuses (and counts) non-replayable tapes."""
        if not program.replayable:
            self.rejected += 1
            return False
        self._programs[signature] = program
        self._programs.move_to_end(signature)
        while len(self._programs) > self.capacity:
            self._programs.popitem(last=False)
        return True

    def invalidate(self) -> None:
        """Drop every program (parameter buffers rebound, dtype cast...)."""
        if self._programs:
            self.invalidations += 1
        self._programs.clear()

    def __len__(self) -> int:
        return len(self._programs)

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "rejected": self.rejected,
            "programs": len(self._programs),
        }
