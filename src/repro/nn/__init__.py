"""Vectorized NumPy autograd + neural-network substrate.

The paper implements Pitot in JAX; this subpackage provides the equivalent
machinery offline: a tape-based reverse-mode :class:`~repro.nn.tensor.Tensor`,
module containers, Pitot's layers (GELU MLP towers, embedding tables), the
paper's losses (log-space squared error, pinball), and the AdaMax optimizer
used for all experiments.
"""

from .functional import (
    ACTIVATIONS,
    absolute_error,
    gelu,
    identity,
    leaky_relu,
    logsumexp,
    pinball_loss,
    relu,
    softmax,
    softplus,
    squared_error,
)
from .gradcheck import check_gradients, numerical_gradient
from .layers import MLP, EmbeddingTable, Linear
from .module import Module, Parameter
from .optim import Adam, AdaMax, Optimizer, SGD
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    maximum,
    minimum,
    no_grad,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "EmbeddingTable",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaMax",
    "relu",
    "leaky_relu",
    "gelu",
    "identity",
    "softplus",
    "softmax",
    "logsumexp",
    "squared_error",
    "absolute_error",
    "pinball_loss",
    "ACTIVATIONS",
    "check_gradients",
    "numerical_gradient",
]
