"""Vectorized NumPy autograd + neural-network substrate.

The paper implements Pitot in JAX; this subpackage provides the equivalent
machinery offline: a tape-based reverse-mode :class:`~repro.nn.tensor.Tensor`,
module containers, Pitot's layers (GELU MLP towers, embedding tables), the
paper's losses (log-space squared error, pinball), and the AdaMax optimizer
used for all experiments.
"""

from .functional import (
    ACTIVATIONS,
    absolute_error,
    gelu,
    identity,
    leaky_relu,
    logsumexp,
    pinball_loss,
    relu,
    softmax,
    softplus,
    squared_error,
)
from .fused import (
    fused_leaky_relu,
    fused_linear,
    fused_mlp,
    fused_pinball,
    fused_relu,
)
from .gradcheck import check_gradients, numerical_gradient
from .layers import MLP, EmbeddingTable, Linear
from .module import Module, Parameter
from .optim import Adam, AdaMax, Optimizer, SGD
from .tape import ScratchArena, TapeCache, TapeProgram, TapeRecorder
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    maximum,
    minimum,
    no_grad,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "get_default_dtype",
    "ScratchArena",
    "TapeRecorder",
    "TapeProgram",
    "TapeCache",
    "fused_linear",
    "fused_mlp",
    "fused_leaky_relu",
    "fused_relu",
    "fused_pinball",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "EmbeddingTable",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaMax",
    "relu",
    "leaky_relu",
    "gelu",
    "identity",
    "softplus",
    "softmax",
    "logsumexp",
    "squared_error",
    "absolute_error",
    "pinball_loss",
    "ACTIVATIONS",
    "check_gradients",
    "numerical_gradient",
]
