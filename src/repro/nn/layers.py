"""Neural-network layers: Linear, MLP, and embedding tables.

The paper's towers are 2-hidden-layer 128-unit GELU MLPs (Sec 3.3); the
baselines use 256-unit variants (App B.4). :class:`EmbeddingTable` backs
both the learned features φ (Table 1: dimension q=1 per entity) and the
pure matrix-factorization baseline.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import init
from .functional import gelu
from .module import Module, Parameter
from .tensor import Tensor, concatenate

__all__ = ["Linear", "MLP", "EmbeddingTable"]


class Linear(Module):
    """Affine layer ``y = x W + b`` with Glorot-uniform weights."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,)))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden activation.

    Parameters
    ----------
    in_features:
        Input dimensionality.
    hidden:
        Sizes of the hidden layers (``(128, 128)`` for Pitot's towers).
    out_features:
        Output dimensionality; the output layer is linear (no activation).
    rng:
        Generator used to initialize every layer.
    activation:
        Hidden activation; defaults to GELU as in the paper.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        activation: Callable[[Tensor], Tensor] = gelu,
    ) -> None:
        super().__init__()
        self.activation = activation
        sizes = [in_features, *hidden, out_features]
        self.n_layers = len(sizes) - 1
        for idx, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            setattr(self, f"layer{idx}", Linear(fan_in, fan_out, rng))

    def forward(self, x: Tensor) -> Tensor:
        for idx in range(self.n_layers):
            x = getattr(self, f"layer{idx}")(x)
            if idx < self.n_layers - 1:
                x = self.activation(x)
        return x


class EmbeddingTable(Module):
    """A learnable ``(num_entities, dim)`` table with gather access.

    Used for the learned features φ of Sec 3.3 ("additional parameters
    associated with each workload and platform") and for the pure matrix
    factorization baseline's workload/platform vectors.
    """

    def __init__(
        self,
        num_entities: int,
        dim: int,
        rng: np.random.Generator | None = None,
        std: float = 0.01,
    ) -> None:
        super().__init__()
        self.num_entities = num_entities
        self.dim = dim
        if rng is None or std == 0.0:
            table = init.zeros((num_entities, dim))
        else:
            table = init.normal(rng, (num_entities, dim), std=std)
        self.table = Parameter(table)

    def forward(self, indices: np.ndarray | None = None) -> Tensor:
        """Gather rows by index; with ``None`` return the whole table.

        Pitot always computes *all* embeddings and indexes afterwards
        (App B.3's "compute all module and device embeddings" trick), so
        the ``None`` path is the hot one.
        """
        if indices is None:
            return self.table
        return self.table.take(np.asarray(indices, dtype=np.intp))

    def concat_with(self, features: np.ndarray) -> Tensor:
        """Concatenate static features with the learned rows: ``[x, φ]``."""
        if features.shape[0] != self.num_entities:
            raise ValueError(
                f"feature rows {features.shape[0]} != entities {self.num_entities}"
            )
        if self.dim == 0:
            return Tensor(features)
        return concatenate([Tensor(features), self.table], axis=1)

    def concat_rows(self, features: np.ndarray, rows: np.ndarray) -> Tensor:
        """``[x, φ]`` restricted to a subset of entity rows.

        The batch-sparse training path: the gather through
        :meth:`Tensor.take` scatter-adds gradients back to the full table,
        so only the referenced rows are ever forwarded through a tower.
        Row ``k`` of the result equals row ``rows[k]`` of
        :meth:`concat_with`.
        """
        if features.shape[0] != self.num_entities:
            raise ValueError(
                f"feature rows {features.shape[0]} != entities {self.num_entities}"
            )
        rows = np.asarray(rows, dtype=np.intp)
        if self.dim == 0:
            return Tensor(features[rows])
        return concatenate(
            [Tensor(features[rows]), self.table.take(rows)], axis=1
        )
