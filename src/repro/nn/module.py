"""Module/parameter containers, in the spirit of ``torch.nn.Module``.

Modules register :class:`Parameter` attributes and sub-modules
automatically through ``__setattr__``; ``state_dict``/``load_state_dict``
serialize to plain ``{name: ndarray}`` dicts, which the trainer uses for
validation checkpointing (Sec 3.6 / App B.3 keeps the checkpoint with the
lowest validation loss).
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor flagged as trainable."""

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with automatic parameter/sub-module registration."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter iteration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters (Pitot reports ~111k)."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter, keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            # In-place copy (not rebinding) keeps the parameter's buffer
            # identity stable: recorded tape programs, fused-kernel
            # closures, and shared-memory worker views all capture
            # ``p.data`` by reference and must observe checkpoint loads.
            np.copyto(p.data, state[name])

    # ------------------------------------------------------------------
    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)

    def forward(self, *args: Any, **kwargs: Any) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError
