"""Differentiable functions built on :mod:`repro.nn.tensor`.

Includes the activations used by Pitot (GELU on hidden layers, LeakyReLU
with slope 0.1 as the interference activation α of Eq. 9) and the losses of
the paper: squared error in log space (Eq. 1) and the pinball/quantile loss
(Eq. 13).
"""

from __future__ import annotations

import numpy as np

from .tensor import Array, Tensor, as_tensor, where

__all__ = [
    "relu",
    "leaky_relu",
    "gelu",
    "softplus",
    "identity",
    "softmax",
    "logsumexp",
    "squared_error",
    "absolute_error",
    "pinball_loss",
    "ACTIVATIONS",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    x = as_tensor(x)
    return where(x.data > 0, x, Tensor(np.zeros_like(x.data)))


def leaky_relu(x: Tensor, negative_slope: float = 0.1) -> Tensor:
    """Leaky ReLU; the paper's interference activation uses slope 0.1.

    The paper motivates the leak: plain ReLU interference heads can die
    ("extremely negative") under poor initialization (Sec 3.4).
    """
    x = as_tensor(x)
    return where(x.data > 0, x, x * negative_slope)


_GELU_C = float(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation).

    ``0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))`` — the standard
    approximation; accurate to ~1e-3 of the exact erf form. Implemented as
    a single primitive node with a closed-form derivative: GELU sits on
    every hidden layer of every tower, so graph size matters here.
    """
    x = as_tensor(x)
    v = x.data
    # (v*v)*v instead of v**3: same association as the fused kernel
    # (repro.nn.fused.gelu_forward) and ~40x faster than np.power on large
    # hidden activations. NOT bitwise-equal to the previous v**3 form.
    u = _GELU_C * (v + 0.044715 * ((v * v) * v))
    t = np.tanh(u)
    data = 0.5 * v * (1.0 + t)

    def backward(g: Array) -> None:
        if x.requires_grad:
            du = _GELU_C * (1.0 + 3.0 * 0.044715 * (v * v))
            local = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du
            x._accumulate(g * local, own=True)

    return Tensor._make(data, (x,), backward)


def softplus(x: Tensor) -> Tensor:
    """Numerically-stable ``log(1 + exp(x))``."""
    x = as_tensor(x)
    # max(x, 0) + log1p(exp(-|x|)) — composed from primitives.
    positive = where(x.data > 0, x, Tensor(np.zeros_like(x.data)))
    return positive + ((-x.abs()).exp() + 1.0).log()


def identity(x: Tensor) -> Tensor:
    """Identity activation (the "simple multiplicative" ablation of Fig 4d)."""
    return as_tensor(x)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis`` (attention baseline)."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def logsumexp(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-sum-exp along ``axis``."""
    x = as_tensor(x)
    m = Tensor(x.data.max(axis=axis, keepdims=True))
    return (x - m).exp().sum(axis=axis, keepdims=False).log() + Tensor(
        x.data.max(axis=axis, keepdims=False)
    )


def squared_error(pred: Tensor, target: Array | Tensor) -> Tensor:
    """Elementwise squared error (Eq. 1 operates on log runtimes)."""
    target = as_tensor(target)
    diff = pred - target.detach()
    return diff * diff


def absolute_error(pred: Tensor, target: Array | Tensor) -> Tensor:
    """Elementwise absolute error."""
    target = as_tensor(target)
    return (pred - target.detach()).abs()


def pinball_loss(pred: Tensor, target: Array | Tensor, quantile: float) -> Tensor:
    """Quantile ("pinball") loss of Eq. 13, elementwise.

    For residual ``u = target - pred`` this is ``quantile * u`` when
    ``u > 0`` (under-prediction) and ``(quantile - 1) * u`` otherwise; its
    minimizer is the ``quantile``-quantile of the target distribution.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    target = as_tensor(target).detach()
    under = target - pred  # positive when we under-predicted
    return where(under.data > 0, under * quantile, under * (quantile - 1.0))


#: Registry used by config files to name activations.
ACTIVATIONS = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "gelu": gelu,
    "identity": identity,
    "softplus": softplus,
}
