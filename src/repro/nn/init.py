"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so every
model in the reproduction is bit-reproducible from a seed; nothing reads
global RNG state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "glorot_normal", "he_normal", "zeros", "normal"]


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def glorot_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He initialization (preferred with ReLU-family activations)."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros array (biases, learned features φ)."""
    return np.zeros(shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.01) -> np.ndarray:
    """Small isotropic Gaussian (embedding tables)."""
    return rng.normal(0.0, std, size=shape)
