"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the computational substrate for the whole reproduction: the
paper implements Pitot in JAX, which is unavailable offline, so we provide a
small but complete autograd engine in vectorized NumPy. The design follows
the usual tape-based approach: every operation records a closure that
propagates the upstream gradient to its inputs; :meth:`Tensor.backward` runs
the closures in reverse topological order.

All operations support full NumPy broadcasting. Gradients flowing into a
broadcast operand are summed over the broadcast axes (``_unbroadcast``), so
shapes of ``tensor.grad`` always match ``tensor.data``.

float64 is the default dtype: the models in this reproduction are ~1e5
parameters, so memory is not a concern and float64 keeps the
numerical-gradient tests tight. The :class:`default_dtype` context switches
new tensors (and therefore whole training runs) to another float dtype —
the trainer's optional float32 path uses it for the 2-2.5x BLAS/tanh
throughput win on CPU.

Two mechanisms keep the training hot loop lean:

* :class:`no_grad` disables graph construction entirely — ops executed
  inside the context produce plain value tensors with no tape, which is
  what validation/serving forwards want.
* Backward closures hand freshly-computed gradient arrays to
  ``_accumulate(..., own=True)``; the first accumulation into a tensor
  then *adopts* the array as its gradient buffer instead of copying it,
  and later accumulations add in place. Only closures that forward a view
  of the upstream gradient (pure shape ops, concatenate slices) still pay
  a defensive copy.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Sequence

import numpy as np

Array = np.ndarray

#: Anything `np.asarray` accepts: scalars, sequences, arrays, Tensors.
TensorLike = Any

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "get_default_dtype",
]

#: Global autograd switch; flipped by :class:`no_grad`.
_GRAD_ENABLED: bool = True

#: Dtype given to newly-created tensors; flipped by :class:`default_dtype`.
_DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)

#: Monotone creation-sequence counter. Every tensor is stamped with the
#: next value; :meth:`Tensor.backward` runs closures in *descending* stamp
#: order (creation order is a valid topological order, parents always
#: precede children), which makes gradient-accumulation order a
#: deterministic function of graph construction — the property that lets a
#: recorded tape (:mod:`repro.nn.tape`) replay bitwise-identically to a
#: fresh backward pass.
_SEQ: int = 0

#: Active tape recorder (or ``None``); see :mod:`repro.nn.tape`. Kept here
#: so the `_make` hot path pays one global load when recording is off.
_ACTIVE_TAPE: Any = None


def get_default_dtype() -> np.dtype:
    """Dtype assigned to tensors created outside a ``default_dtype``."""
    return _DEFAULT_DTYPE


class default_dtype:
    """Context manager that switches the dtype of newly-created tensors.

    Re-entrant and exception-safe, mirroring :class:`no_grad`. Only float
    dtypes make sense for autograd; the constructor rejects others.
    """

    def __init__(self, dtype: Any) -> None:
        dt = np.dtype(dtype)
        if dt.kind != "f":
            raise TypeError(f"default_dtype requires a float dtype, got {dt}")
        self._dtype = dt
        self._previous: list[np.dtype] = []

    def __enter__(self) -> "default_dtype":
        global _DEFAULT_DTYPE
        self._previous.append(_DEFAULT_DTYPE)
        _DEFAULT_DTYPE = self._dtype
        return self

    def __exit__(self, *exc: object) -> bool:
        global _DEFAULT_DTYPE
        _DEFAULT_DTYPE = self._previous.pop()
        return False


def _push_tape(recorder: Any) -> Any:
    """Install ``recorder`` as the active tape; returns the previous one."""
    global _ACTIVE_TAPE
    previous = _ACTIVE_TAPE
    _ACTIVE_TAPE = recorder
    return previous


def _pop_tape(previous: Any) -> None:
    global _ACTIVE_TAPE
    _ACTIVE_TAPE = previous


def _noop_replay() -> None:
    """Replay marker for view outputs: recomputing the parent in place
    updates the view automatically, so there is nothing to do."""


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd tape."""
    return _GRAD_ENABLED


class no_grad:
    """Context manager / decorator that disables gradient tracking.

    Inside the context every operation produces a constant tensor
    (``requires_grad=False``, no parents, no backward closure), so large
    inference forwards — validation sweeps, embedding snapshots, serving —
    skip tape construction and gradient-buffer allocation entirely.
    Re-entrant and exception-safe; the previous state is restored on exit
    (a stack, so one instance can be nested or reused).
    """

    def __init__(self) -> None:
        self._previous: list[bool] = []

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous.append(_GRAD_ENABLED)
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> bool:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous.pop()
        return False

    def __call__(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with no_grad():
                return fn(*args, **kwargs)

        return wrapper


def _is_basic_index(index: Any) -> bool:
    """True when ``index`` uses only basic (non-fancy) indexing."""
    parts = index if isinstance(index, tuple) else (index,)
    return all(
        isinstance(p, (int, np.integer, slice, type(None), type(Ellipsis)))
        for p in parts
    )


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` over axes that were broadcast from ``shape``.

    NumPy broadcasting aligns trailing dimensions; leading axes that do not
    exist in ``shape`` are summed away, and axes of size one in ``shape``
    that were stretched are summed with ``keepdims``.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Array-like payload; converted to an ``ndarray`` of the ambient
        default dtype (float64 unless inside :class:`default_dtype`).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_seq", "_replay")

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
    ) -> None:
        global _SEQ
        self.data: Array = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: Array | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[Array], None] | None = None
        self._prev: tuple[Tensor, ...] = _prev
        _SEQ += 1
        self._seq: int = _SEQ
        self._replay: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> Array:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single element, got {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph bookkeeping
    # ------------------------------------------------------------------
    def _accumulate(self, grad: Array, own: bool = False) -> None:
        """Add ``grad`` into ``self.grad`` (in place after the first call).

        ``own=True`` is a promise from the caller that ``grad`` is a
        freshly-computed array (or a view of one) referenced nowhere else;
        the first accumulation then adopts it as the gradient buffer
        instead of copying. Without the flag the upstream array may be a
        shared view (reshape/transpose backward), so a copy is taken.
        """
        if self.grad is None:
            if grad.shape != self.data.shape:
                # Seeding with a broadcastable gradient (user-provided).
                self.grad = np.broadcast_to(grad, self.data.shape).astype(
                    self.data.dtype
                )
            elif own and grad.dtype == self.data.dtype:
                self.grad = grad
            else:
                self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad += grad

    @staticmethod
    def _make(
        data: Array,
        parents: tuple["Tensor", ...],
        backward: Callable[[Array], None],
        replay: Callable[[], None] | None = None,
    ) -> "Tensor":
        """Build an op-output tensor.

        ``replay`` is an optional closure that recomputes ``data`` *in
        place* from the parents' current buffers; an active tape recorder
        (:mod:`repro.nn.tape`) stores it so an identical-shape step can be
        re-executed without rebuilding the graph. Ops whose structure
        depends on runtime values (``where`` masks, fancy indexing) pass
        ``None``, which marks the recorded tape non-replayable.
        """
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward
        if _ACTIVE_TAPE is not None:
            out._replay = replay
            _ACTIVE_TAPE.record(out)
        return out

    def backward(self, grad: Array | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (for scalar losses this is the usual
        seed). Gradients accumulate into ``.grad`` of every reachable
        tensor with ``requires_grad=True``.
        """
        if grad is None:
            grad, seed_owned = np.ones_like(self.data), True
        else:
            grad, seed_owned = np.asarray(grad, dtype=self.data.dtype), False

        # Collect the reachable subgraph (iterative, avoiding recursion
        # limits on deep MLP graphs), then run closures in *descending
        # creation order*. Creation order is a valid topological order —
        # parents always exist before children — and unlike DFS post-order
        # it does not depend on traversal tie-breaking, so the
        # gradient-accumulation order (bit-significant for nodes with 3+
        # consumers) is exactly the order a recorded tape replays in.
        reachable: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tensor] = [self]
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            reachable.append(node)
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append(parent)
        reachable.sort(key=lambda t: t._seq, reverse=True)

        self._accumulate(grad, own=seed_owned)
        for node in reachable:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(g: Array) -> None:
            if self.requires_grad:
                gs = _unbroadcast(g, self.shape)
                # `gs is g` when no broadcast happened: the upstream
                # buffer is shared, so only summed results are adopted.
                self._accumulate(gs, own=gs is not g)
            if other.requires_grad:
                go = _unbroadcast(g, other.shape)
                other._accumulate(go, own=go is not g)

        out = Tensor._make(data, (self, other), backward)
        if _ACTIVE_TAPE is not None:
            # Replay closures (here and in every op below) must capture
            # the output *buffer*, never `out` itself: a lambda holding
            # its own tensor turns each recorded graph into a reference
            # cycle, so dropped steps wait for the cyclic GC instead of
            # freeing by refcount — at fleet scale that backlog slows
            # later fits in the same process by several x.
            out_data = out.data
            out._replay = lambda: np.add(self.data, other.data, out=out_data)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(-g, own=True)

        out = Tensor._make(-self.data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.negative(self.data, out=out_data)
        return out

    def __sub__(self, other: TensorLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape), own=True)
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape), own=True)

        out = Tensor._make(data, (self, other), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.multiply(self.data, other.data, out=out_data)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape), own=True)
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / other.data**2, other.shape),
                    own=True,
                )

        out = Tensor._make(data, (self, other), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.divide(self.data, other.data, out=out_data)
        return out

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        data = self.data**exponent

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1), own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.power(self.data, exponent, out=out_data)
        return out

    # ------------------------------------------------------------------
    # Matrix products
    # ------------------------------------------------------------------
    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        data = a @ b

        def backward(g: Array) -> None:
            # Promote 1-D operands to matrices so one pair of formulas
            # covers every case, then unbroadcast back down.
            a2 = a[None, :] if a.ndim == 1 else a
            b2 = b[:, None] if b.ndim == 1 else b
            g2 = np.asarray(g)
            if a.ndim == 1:
                g2 = np.expand_dims(g2, -2)
            if b.ndim == 1:
                g2 = np.expand_dims(g2, -1)
            if self.requires_grad:
                ga = g2 @ np.swapaxes(b2, -1, -2)
                self._accumulate(
                    _unbroadcast(ga, a2.shape).reshape(a.shape), own=True
                )
            if other.requires_grad:
                gb = np.swapaxes(a2, -1, -2) @ g2
                other._accumulate(
                    _unbroadcast(gb, b2.shape).reshape(b.shape), own=True
                )

        out = Tensor._make(data, (self, other), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.matmul(a, b, out=out_data)
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * data, own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.exp(self.data, out=out_data)
        return out

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data, own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.log(self.data, out=out_data)
        return out

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - data**2), own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.tanh(self.data, out=out_data)
        return out

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * data * (1.0 - data), own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.copyto(
                out_data, 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
            )
        return out

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g * np.sign(self.data), own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.abs(self.data, out=out_data)
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(
        self,
        axis: int | tuple[int, ...] | None = None,
        keepdims: bool = False,
    ) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: Array) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.shape).copy(), own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out_data = out.data
            out._replay = lambda: np.sum(
                self.data, axis=axis, keepdims=keepdims, out=out_data
            )
        return out

    def mean(
        self,
        axis: int | tuple[int, ...] | None = None,
        keepdims: bool = False,
    ) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(
        self,
        axis: int | tuple[int, ...] | None = None,
        keepdims: bool = False,
    ) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: Array) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            expanded = data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
                    expanded = np.expand_dims(expanded, ax)
            mask = self.data == expanded
            # Split gradient equally among ties (matches JAX behaviour).
            counts = mask.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            self._accumulate(np.where(mask, grad / counts, 0.0), own=True)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int | tuple[int, ...] | list[int]) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            if np.shares_memory(out.data, self.data):
                out._replay = _noop_replay
            else:
                out_data = out.data
                out._replay = lambda: np.copyto(
                    out_data, self.data.reshape(out_data.shape)
                )
        return out

    def transpose(self, *axes: int | tuple[int, ...] | list[int]) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            # transpose always returns a view of the parent buffer.
            out._replay = _noop_replay
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def squeeze(self, axis: int) -> "Tensor":
        data = self.data.squeeze(axis=axis)
        original = self.shape

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out._replay = _noop_replay  # always a view
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)
        original = self.shape

        def backward(g: Array) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            out._replay = _noop_replay  # always a view
        return out

    # ------------------------------------------------------------------
    # Indexing / gathers
    # ------------------------------------------------------------------
    def __getitem__(self, index: Any) -> "Tensor":
        data = self.data[index]
        basic = _is_basic_index(index)

        def backward(g: Array) -> None:
            if not self.requires_grad:
                return
            grad = np.zeros_like(self.data)
            if basic:
                # Basic indexing selects disjoint cells: plain += suffices
                # and is far faster than ufunc.at.
                grad[index] += g
            else:
                np.add.at(grad, index, g)
            self._accumulate(grad, own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None and basic:
            # Basic indexing returns a view of the parent buffer.
            out._replay = _noop_replay
        return out

    def take(self, indices: Array) -> "Tensor":
        """Gather rows along axis 0 (embedding lookup).

        The backward pass scatter-adds, so repeated indices accumulate —
        exactly what an embedding table needs. Accumulation uses a flat
        ``bincount`` instead of ``np.add.at``, which profiles ~10x faster
        for the (many small rows) gathers in Pitot's hot loop.
        """
        indices = np.asarray(indices, dtype=np.intp)
        data = self.data[indices]
        n_rows = self.data.shape[0]
        row_size = int(np.prod(self.data.shape[1:], dtype=np.intp)) if self.data.ndim > 1 else 1

        def backward(g: Array) -> None:
            if not self.requires_grad:
                return
            flat_idx = indices.ravel()
            g2 = np.ascontiguousarray(g).reshape(len(flat_idx), row_size)
            bins = flat_idx[:, None] * row_size + np.arange(row_size, dtype=np.intp)
            grad = np.bincount(
                bins.ravel(), weights=g2.ravel(), minlength=n_rows * row_size
            ).reshape(self.data.shape)
            if grad.dtype != self.data.dtype:  # bincount yields float64
                grad = grad.astype(self.data.dtype)
            self._accumulate(grad, own=True)

        out = Tensor._make(data, (self,), backward)
        if _ACTIVE_TAPE is not None:
            # `indices` is captured by reference: rebinding a program's
            # index buffer (np.copyto) re-routes the replayed gather.
            out_data = out.data
            out._replay = lambda: np.take(self.data, indices, axis=0, out=out_data)
        return out


def as_tensor(value: TensorLike) -> Tensor:
    """Coerce a value to :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: Array) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(lo, hi)
                t._accumulate(g[tuple(sl)])

    out = Tensor._make(data, tuple(tensors), backward)
    if _ACTIVE_TAPE is not None:
        parts = [t.data for t in tensors]
        out_data = out.data
        out._replay = lambda: np.concatenate(parts, axis=axis, out=out_data)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: Array) -> None:
        for k, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(g, k, axis=axis), own=True)

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: TensorLike, a: TensorLike, b: TensorLike) -> Tensor:
    """Differentiable ``np.where``; ``condition`` is a constant mask."""
    cond = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    data = np.where(cond, a.data, b.data)

    def backward(g: Array) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(np.where(cond, g, 0.0), a.shape), own=True)
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.where(cond, 0.0, g), b.shape), own=True)

    return Tensor._make(data, (a, b), backward)


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    """Differentiable elementwise maximum; ties send gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data >= b.data
    return where(mask, a, b)


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    """Differentiable elementwise minimum; ties send gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data <= b.data
    return where(mask, a, b)
