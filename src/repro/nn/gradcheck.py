"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every primitive op and the composed
models: central finite differences against the analytic gradients from
:meth:`Tensor.backward`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[[], Tensor],
    param: Tensor,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``param``.

    ``fn`` must read ``param.data`` afresh on each call (closures over the
    tensor object satisfy this).
    """
    grad = np.zeros_like(param.data)
    flat = param.data.ravel()
    grad_flat = grad.ravel()
    for idx in range(flat.size):
        original = flat[idx]
        flat[idx] = original + eps
        f_plus = float(fn().data)
        flat[idx] = original - eps
        f_minus = float(fn().data)
        flat[idx] = original
        grad_flat[idx] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of scalar ``fn()`` match finite differences.

    Raises ``AssertionError`` with the offending parameter index and the
    maximum absolute deviation on mismatch.
    """
    for p in params:
        p.zero_grad()
    out = fn()
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    for i, p in enumerate(params):
        analytic = p.grad if p.grad is not None else np.zeros_like(p.data)
        numeric = numerical_gradient(fn, p, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            deviation = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for parameter {i} (shape {p.shape}): "
                f"max |analytic - numeric| = {deviation:.3e}"
            )
