"""First-order optimizers: SGD, Adam, and AdaMax.

The paper trains Pitot and all baselines with AdaMax — "the l-inf variant
of Adam" — at its default hyperparameters (lr=1e-3, β1=0.9, β2=0.999)
(App B.3). SGD and Adam are provided for ablations and tests.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdaMax"]


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self.step_count += 1
        for p in self.params:
            if p.grad is not None:
                self._update(p)

    def _update(self, p: Parameter) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = {id(p): np.zeros_like(p.data) for p in self.params}

    def _update(self, p: Parameter) -> None:
        v = self._velocity[id(p)]
        v *= self.momentum
        v += p.grad
        p.data -= self.lr * v


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = {id(p): np.zeros_like(p.data) for p in self.params}
        self._v = {id(p): np.zeros_like(p.data) for p in self.params}

    def _update(self, p: Parameter) -> None:
        t = self.step_count
        m, v = self._m[id(p)], self._v[id(p)]
        m *= self.beta1
        m += (1.0 - self.beta1) * p.grad
        v *= self.beta2
        v += (1.0 - self.beta2) * p.grad**2
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdaMax(Optimizer):
    """AdaMax: the infinity-norm variant of Adam (the paper's optimizer).

    Second moment is replaced by an exponentially-weighted infinity norm
    ``u = max(beta2 * u, |g|)``; only the first moment needs bias
    correction.

    The update is fused: every intermediate goes through one preallocated
    per-parameter scratch buffer, so a step allocates nothing. This is the
    trainer's hot loop (one call per parameter per step), and the
    temporaries of the naive formulation dominated its profile.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = {id(p): np.zeros_like(p.data) for p in self.params}
        self._u = {id(p): np.zeros_like(p.data) for p in self.params}
        self._scratch = {id(p): np.empty_like(p.data) for p in self.params}

    def _update(self, p: Parameter) -> None:
        t = self.step_count
        m, u = self._m[id(p)], self._u[id(p)]
        s, g = self._scratch[id(p)], p.grad
        if g.shape != s.shape:  # manually-assigned broadcastable grads
            g = np.broadcast_to(g, s.shape)
        # m = beta1 * m + (1 - beta1) * g
        m *= self.beta1
        np.multiply(g, 1.0 - self.beta1, out=s)
        m += s
        # u = max(beta2 * u, |g|)
        u *= self.beta2
        np.abs(g, out=s)
        np.maximum(u, s, out=u)
        # p -= lr / (1 - beta1^t) * m / (u + eps)
        np.add(u, self.eps, out=s)
        np.divide(m, s, out=s)
        s *= self.lr / (1.0 - self.beta1**t)
        p.data -= s
