"""Fused, replayable kernels for the training hot path.

Each function here collapses a chain of primitive autograd ops into one
tape node whose forward runs entirely in preallocated
:class:`~repro.nn.tape.ScratchArena` buffers and whose backward/replay
closures recompute in place. Every kernel is **bitwise identical** to the
primitive composition it replaces (same elementwise association order,
same GEMM calls, same accumulation order into shared parents) — the
equivalence suite in ``tests/core/test_engine_equivalence.py`` pins this.

Fusing matters twice over:

* the forward allocates nothing per step (the arena owns one buffer per
  operand), and
* the node is *replayable*: unlike ``where``-based primitives, whose
  branch masks are frozen at build time, these kernels recompute their
  masks from the parents' live buffers, so a recorded tape
  (:class:`~repro.nn.tape.TapeProgram`) can re-run them against fresh
  inputs.
"""

from __future__ import annotations

from typing import cast

import numpy as np

from .functional import gelu as _gelu_primitive
from .module import Module
from .tape import ScratchArena
from .tensor import Array, Tensor

__all__ = [
    "fused_linear",
    "fused_mlp",
    "fused_leaky_relu",
    "fused_relu",
    "fused_pinball",
    "gelu_forward",
    "gelu_grad_local",
]

_GELU_C = float(np.sqrt(2.0 / np.pi))
_GELU_A = 0.044715
_GELU_K3 = 3.0 * _GELU_A


def gelu_forward(v: Array, out: Array, t: Array, s: Array) -> None:
    """tanh-approximation GELU, in place: ``out = 0.5 v (1 + tanh(u))``.

    ``t`` receives ``tanh(u)`` (needed by the backward pass); ``s`` is
    scratch. Elementwise association matches :func:`repro.nn.gelu`
    exactly: ``u = C * (v + a * ((v*v)*v))``, ``out = (0.5*v) * (1+t)``.
    """
    np.multiply(v, v, out=s)
    s *= v
    s *= _GELU_A
    s += v
    s *= _GELU_C
    np.tanh(s, out=t)
    np.multiply(v, 0.5, out=out)
    np.add(t, 1.0, out=s)
    out *= s


def gelu_grad_local(
    g: Array, v: Array, t: Array, out: Array, s: Array, r: Array
) -> None:
    """``out = g * dGELU/dv`` in place, matching :func:`repro.nn.gelu`.

    Association mirrors the primitive backward exactly:
    ``du = C * (1 + 3a * (v*v))`` and
    ``local = 0.5*(1+t) + ((0.5*v) * (1 - t*t)) * du``.
    """
    np.multiply(v, v, out=s)
    s *= _GELU_K3
    s += 1.0
    s *= _GELU_C  # s = du
    np.multiply(t, t, out=r)
    np.subtract(1.0, r, out=r)  # r = 1 - t^2
    np.multiply(v, 0.5, out=out)
    out *= r
    out *= s  # out = ((0.5 v)(1 - t^2)) du
    np.add(t, 1.0, out=r)
    r *= 0.5  # r = 0.5 (1 + t)
    out += r  # out = local  (F + A == A + F bitwise)
    out *= g  # g * local (commutative pair)


def fused_linear(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    arena: ScratchArena,
    tag: str,
    gelu: bool = False,
) -> Tensor:
    """``x @ W + b`` (optionally GELU-activated) as one arena-backed node.

    Replaces the ``matmul -> add -> gelu`` primitive chain of a tower
    layer. All intermediates — pre-activation, tanh cache, gradient
    scratch, parameter gradients — live in ``arena`` buffers keyed by
    ``tag``, so repeated same-shape steps allocate nothing.
    """
    xd, Wd, bd = x.data, weight.data, bias.data
    n, dout = xd.shape[0], Wd.shape[1]
    dt = xd.dtype
    h = arena.get(f"{tag}.h", (n, dout), dt)
    np.matmul(xd, Wd, out=h)
    h += bd
    if gelu:
        t = arena.get(f"{tag}.t", (n, dout), dt)
        s = arena.get(f"{tag}.s", (n, dout), dt)
        out_data = arena.get(f"{tag}.out", (n, dout), dt)
        gelu_forward(h, out_data, t, s)
    else:
        out_data = h

    def backward(g: Array) -> None:
        if gelu:
            dh = arena.get(f"{tag}.dh", (n, dout), dt)
            r = arena.get(f"{tag}.r", (n, dout), dt)
            gelu_grad_local(g, h, t, dh, s, r)
        else:
            dh = np.asarray(g)
        if bias.requires_grad:
            gb = arena.get(f"{tag}.gb", (dout,), dt)
            np.sum(dh, axis=0, out=gb)
            bias._accumulate(gb, own=True)
        if x.requires_grad:
            gx = arena.get(f"{tag}.gx", xd.shape, dt)
            np.matmul(dh, Wd.T, out=gx)
            x._accumulate(gx, own=True)
        if weight.requires_grad:
            gw = arena.get(f"{tag}.gw", Wd.shape, dt)
            np.matmul(xd.T, dh, out=gw)
            weight._accumulate(gw, own=True)

    def replay() -> None:
        np.matmul(xd, Wd, out=h)
        np.add(h, bd, out=h)  # `h += bd`; augmented form would bind h local
        if gelu:
            gelu_forward(h, out_data, t, s)

    return Tensor._make(out_data, (x, weight, bias), backward, replay)


def fused_mlp(mlp: Module, x: Tensor, arena: ScratchArena, tag: str) -> Tensor:
    """Run an :class:`~repro.nn.MLP` through fused layer kernels.

    Falls back to the module's own forward when the hidden activation is
    not GELU (ablation configs) — correctness first, fusion when it
    applies.
    """
    if getattr(mlp, "activation", None) is not _gelu_primitive:
        return cast(Tensor, mlp(x))
    n_layers = int(getattr(mlp, "n_layers"))
    for idx in range(n_layers):
        layer = getattr(mlp, f"layer{idx}")
        x = fused_linear(
            x,
            layer.weight,
            layer.bias,
            arena,
            f"{tag}{idx}",
            gelu=idx < n_layers - 1,
        )
    return x


def fused_leaky_relu(x: Tensor, negative_slope: float = 0.1) -> Tensor:
    """Replayable LeakyReLU, bitwise-matching :func:`repro.nn.leaky_relu`.

    The primitive form freezes its ``where`` mask at build time; this node
    recomputes the mask from the live buffer on replay. The backward keeps
    the primitive composition's two-term accumulation order so gradients
    agree bitwise even at signed-zero edge cases.
    """
    v = x.data
    data = np.where(v > 0, v, v * negative_slope)

    def backward(g: Array) -> None:
        if x.requires_grad:
            m = v > 0
            gx = np.where(m, g, 0.0).astype(v.dtype, copy=False)
            gx += np.where(m, 0.0, g).astype(v.dtype, copy=False) * negative_slope
            x._accumulate(gx, own=True)

    out = Tensor._make(data, (x,), backward)
    out_data = out.data  # buffer, not tensor: keep the node acyclic
    out._replay = lambda: _leaky_recompute(v, negative_slope, out_data)
    return out


def _leaky_recompute(v: Array, slope: float, out: Array) -> None:
    np.multiply(v, slope, out=out)
    np.copyto(out, v, where=v > 0)


def fused_relu(x: Tensor) -> Tensor:
    """Replayable ReLU, bitwise-matching :func:`repro.nn.relu`."""
    v = x.data
    data = np.where(v > 0, v, np.zeros_like(v))

    def backward(g: Array) -> None:
        if x.requires_grad:
            gx = np.where(v > 0, g, 0.0).astype(v.dtype, copy=False)
            x._accumulate(gx, own=True)

    out = Tensor._make(data, (x,), backward)
    out_data = out.data  # buffer, not tensor: keep the node acyclic
    out._replay = lambda: _relu_recompute(v, out_data)
    return out


def _relu_recompute(v: Array, out: Array) -> None:
    out.fill(0.0)
    np.copyto(out, v, where=v > 0)


def fused_pinball(pred: Tensor, target: Array, quantiles: Array) -> Tensor:
    """Replayable multi-head pinball loss, ``(B, H)`` elementwise.

    Bitwise-matches the trainer's primitive composition
    ``where(u > 0, u * xi, u * (xi - 1))`` with ``u = target - pred``
    (IEEE subtraction equals adding the negation exactly). ``target`` is
    captured by reference — ``(B, 1)`` — so a tape program can rebind it.
    """
    xi = np.asarray(quantiles)
    xi_m1 = xi - 1.0
    u = target - pred.data

    def backward(g: Array) -> None:
        if pred.requires_grad:
            m = u > 0
            gu = np.where(m, 0.0, g).astype(u.dtype, copy=False) * xi_m1
            gu += np.where(m, g, 0.0).astype(u.dtype, copy=False) * xi
            np.negative(gu, out=gu)
            pred._accumulate(gu, own=True)

    data = np.where(u > 0, u * xi, u * xi_m1)
    out = Tensor._make(data, (pred,), backward)
    out_data = out.data  # buffer, not tensor: keep the node acyclic

    def replay() -> None:
        np.subtract(target, pred.data, out=u)
        np.multiply(u, xi_m1, out=out_data)
        np.copyto(out_data, u * xi, where=u > 0)

    out._replay = replay
    return out
