"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main flows for shell use:

* ``collect`` — run the simulated cluster campaign, save an ``.npz`` dataset;
* ``train`` — fit Pitot on a saved dataset, save the model;
* ``evaluate`` — MAPE / coverage / margin of a saved model on a dataset;
* ``predict`` — runtime (and optional budget) for one workload/platform
  pair with co-runners.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .cluster import RuntimeDataset, collect_dataset, make_split
from .conformal import ConformalRuntimePredictor
from .core import (
    PAPER_QUANTILES,
    PitotConfig,
    TrainerConfig,
    load_model,
    save_model,
    train_pitot,
)
from .eval import coverage, mape, overprovision_margin

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pitot: interference-aware edge runtime prediction "
                    "(MLSys 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="run the simulated collection campaign")
    p.add_argument("output", help="output .npz dataset path")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workloads", type=int, default=None,
                   help="subsample the 249-workload population")
    p.add_argument("--devices", type=int, default=None)
    p.add_argument("--runtimes", type=int, default=None)
    p.add_argument("--sets-per-degree", type=int, default=250)

    p = sub.add_parser("train", help="train Pitot on a saved dataset")
    p.add_argument("dataset", help=".npz dataset from `collect`")
    p.add_argument("output", help="output .npz model path")
    p.add_argument("--fraction", type=float, default=0.8,
                   help="training fraction (rest is held-out test)")
    p.add_argument("--steps", type=int, default=2000)
    p.add_argument("--hidden", type=int, nargs="+", default=[128, 128])
    p.add_argument("--embedding-dim", type=int, default=32)
    p.add_argument("--quantiles", action="store_true",
                   help="train the multi-quantile (bound-predicting) model")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("evaluate", help="evaluate a saved model")
    p.add_argument("model", help=".npz model from `train`")
    p.add_argument("dataset", help=".npz dataset")
    p.add_argument("--fraction", type=float, default=0.8,
                   help="must match the `train` split to keep test honest")
    p.add_argument("--epsilon", type=float, default=None,
                   help="also report conformal bound quality at this rate")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("predict", help="predict one runtime")
    p.add_argument("model", help=".npz model from `train`")
    p.add_argument("--workload", type=int, required=True)
    p.add_argument("--platform", type=int, required=True)
    p.add_argument("--interferers", type=int, nargs="*", default=[])
    return parser


def _cmd_collect(args) -> int:
    dataset = collect_dataset(
        seed=args.seed,
        n_workloads=args.workloads,
        n_devices=args.devices,
        n_runtimes=args.runtimes,
        sets_per_degree=args.sets_per_degree,
    )
    dataset.save(args.output)
    summary = dataset.summary()
    for key, value in summary.items():
        print(f"{key}: {value:,}")
    print(f"saved to {args.output}")
    return 0


def _cmd_train(args) -> int:
    dataset = RuntimeDataset.load(args.dataset)
    split = make_split(dataset, args.fraction, seed=args.seed)
    config = PitotConfig(
        hidden=tuple(args.hidden),
        embedding_dim=args.embedding_dim,
        quantiles=PAPER_QUANTILES if args.quantiles else None,
    )
    result = train_pitot(
        split.train,
        split.calibration,
        model_config=config,
        trainer_config=TrainerConfig(steps=args.steps, seed=args.seed),
    )
    save_model(result.model, args.output)
    print(f"trained {args.steps} steps; best val loss "
          f"{result.best_val_loss:.5f} @ step {result.best_step}")
    print(f"saved to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    model = load_model(args.model)
    dataset = RuntimeDataset.load(args.dataset)
    split = make_split(dataset, args.fraction, seed=args.seed)
    test = split.test
    pred = model.predict_runtime(test.w_idx, test.p_idx, test.interferers)
    iso = test.isolation_mask()
    print(f"test rows: {test.n_observations:,}")
    print(f"MAPE without interference: {mape(pred[iso], test.runtime[iso]):.2%}")
    print(f"MAPE with interference:    {mape(pred[~iso], test.runtime[~iso]):.2%}")

    if args.epsilon is not None:
        quantiles = model.config.quantiles
        strategy = "pitot" if quantiles else "split"
        cp = ConformalRuntimePredictor(
            model, quantiles=quantiles, strategy=strategy
        ).calibrate(split.calibration, epsilons=(args.epsilon,))
        bound = cp.predict_bound_dataset(test, args.epsilon)
        print(f"eps={args.epsilon}: coverage "
              f"{coverage(bound, test.runtime):.3f}, margin "
              f"{overprovision_margin(bound, test.runtime):.2%}")
    return 0


def _cmd_predict(args) -> int:
    model = load_model(args.model)
    if not 0 <= args.workload < model.n_workloads:
        print(f"workload index out of range [0, {model.n_workloads})",
              file=sys.stderr)
        return 2
    if not 0 <= args.platform < model.n_platforms:
        print(f"platform index out of range [0, {model.n_platforms})",
              file=sys.stderr)
        return 2
    interferers = None
    if args.interferers:
        if len(args.interferers) > 3:
            print("at most 3 interferers supported", file=sys.stderr)
            return 2
        pad = args.interferers + [-1] * (3 - len(args.interferers))
        interferers = np.array([pad])
    runtime = model.predict_runtime(
        np.array([args.workload]), np.array([args.platform]), interferers
    )[0]
    print(f"predicted runtime: {runtime:.6f} s")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "collect": _cmd_collect,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "predict": _cmd_predict,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
