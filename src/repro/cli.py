"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main flows for shell use:

* ``scenarios list`` — show the named-scenario registry;
* ``pipeline run`` — run the staged ``collect → scale → train →
  calibrate → evaluate → snapshot`` pipeline for a scenario through the
  content-addressed artifact cache;
* ``collect`` — run the simulated cluster campaign, save an ``.npz``
  dataset;
* ``train`` — fit Pitot on a saved dataset, save the model;
* ``evaluate`` — MAPE / coverage / margin of a saved model on a dataset;
* ``predict`` — runtime (and optional budget) for one workload/platform
  pair with co-runners;
* ``serve`` — answer a stream of bound queries through the batched,
  embedding-cached :class:`~repro.serving.PredictionService`;
* ``bench-serve`` — compare serving throughput: per-call model forward
  vs. snapshot batching vs. LRU-cached lookups;
* ``lifecycle run`` — replay a drift scenario's observation stream
  through the continual loop (ingest → warm update → rolling
  recalibration → atomic swap) and report coverage over time against a
  never-recalibrated baseline;
* ``schedule run`` — play a scheduling scenario's job stream through
  the event-driven cluster simulator (placement on batched conformal
  budgets, deadline-risk migration, online lifecycle recalibration) and
  report per-epoch placement/violation/utilization against a
  never-recalibrated scheduler.

The one-off commands (``collect``/``train``/``evaluate``) are thin
wrappers over the same stage functions the pipeline runs — the CLI no
longer re-implements the campaign protocol, it parameterizes it.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .cluster import RuntimeDataset
from .cluster.dataset import MAX_INTERFERERS, pad_interferers
from .core import PAPER_QUANTILES, load_model, save_model
from .eval import coverage, mape, overprovision_margin
from .pipeline import (
    ArtifactStore,
    calibrate_stage,
    collect_stage,
    make_scenario_split,
    pipeline_stage_keys,
    run_pipeline,
    train_stage,
)
from .devtools.lint import add_lint_arguments
from .devtools.lint import run as _run_lint
from .scenarios import MARGIN_MODES, get_scenario, iter_scenarios
from .serving import PredictionService, ShardedPredictionService

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pitot: interference-aware edge runtime prediction "
                    "(MLSys 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scenarios", help="inspect the scenario registry")
    scenario_sub = p.add_subparsers(dest="scenarios_command", required=True)
    p = scenario_sub.add_parser("list", help="list registered scenarios")
    p.add_argument("--verbose", action="store_true",
                   help="also print each scenario's knob summary")

    p = sub.add_parser("pipeline", help="run the staged scenario pipeline")
    pipeline_sub = p.add_subparsers(dest="pipeline_command", required=True)
    p = pipeline_sub.add_parser(
        "run",
        help="run collect→scale→train→calibrate→evaluate→snapshot "
             "through the artifact cache",
    )
    p.add_argument("--scenario", default="paper",
                   help="registry name (see `repro scenarios list`)")
    p.add_argument("--store", default=".repro-cache",
                   help="artifact-store root (content-addressed stage cache)")
    p.add_argument("--no-store", action="store_true",
                   help="disable caching: compute fresh, persist nothing")
    p.add_argument("--force", action="store_true",
                   help="recompute every stage even on cache hits")
    p.add_argument("--assert-warm", action="store_true",
                   help="exit 1 unless every stage was a cache hit "
                        "(CI cache validation)")
    p.add_argument("--workloads", type=int, default=None,
                   help="override the scenario's workload count")
    p.add_argument("--devices", type=int, default=None)
    p.add_argument("--runtimes", type=int, default=None)
    p.add_argument("--sets-per-degree", type=int, default=None)
    p.add_argument("--steps", type=int, default=None,
                   help="override the scenario's training steps")
    p.add_argument("--margin", default=None, choices=MARGIN_MODES,
                   help="conformal margin mode override "
                        "(naive/weighted/bootstrap/mnar)")

    p = sub.add_parser(
        "lifecycle",
        help="continual-learning lifecycle over a drift scenario",
    )
    lifecycle_sub = p.add_subparsers(dest="lifecycle_command", required=True)
    p = lifecycle_sub.add_parser(
        "run",
        help="replay the scenario's drift trace "
             "(ingest -> update -> recalibrate -> swap) and report "
             "coverage over time",
    )
    p.add_argument("--scenario", default="drifting-fleet",
                   help="a drift-enabled registry scenario")
    p.add_argument("--store", default=".repro-cache",
                   help="artifact store holding the trained snapshot "
                        "(run `repro pipeline run` first)")
    p.add_argument("--assert-warm", action="store_true",
                   help="exit 1 unless every lifecycle stage was a cache "
                        "hit (CI cache validation)")
    p.add_argument("--workloads", type=int, default=None,
                   help="override the scenario's workload count "
                        "(must match the pipeline run that trained it)")
    p.add_argument("--devices", type=int, default=None)
    p.add_argument("--runtimes", type=int, default=None)
    p.add_argument("--sets-per-degree", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--events-per-phase", type=int, default=None,
                   help="override the drift stream's per-phase volume")
    p.add_argument("--chunk", type=int, default=None,
                   help="events per lifecycle tick")
    p.add_argument("--update-steps", type=int, default=None,
                   help="warm-start gradient steps per update burst")
    p.add_argument("--margin", default=None, choices=MARGIN_MODES,
                   help="conformal margin mode override (weighted = "
                        "exponential downweighting instead of hard resets)")

    p = sub.add_parser(
        "schedule",
        help="event-driven fleet scheduling over a scenario",
    )
    schedule_sub = p.add_subparsers(dest="schedule_command", required=True)
    p = schedule_sub.add_parser(
        "run",
        help="simulate the scenario's job stream (placement on batched "
             "budgets, migration, online recalibration) and report "
             "violations/utilization per epoch",
    )
    p.add_argument("--scenario", default="schedule",
                   help="a scheduling-enabled registry scenario")
    p.add_argument("--store", default=".repro-cache",
                   help="artifact store holding the trained snapshot "
                        "(run `repro pipeline run` first)")
    p.add_argument("--assert-warm", action="store_true",
                   help="exit 1 unless every stage was a cache hit "
                        "(CI cache validation)")
    p.add_argument("--workloads", type=int, default=None,
                   help="override the scenario's workload count "
                        "(must match the pipeline run that trained it)")
    p.add_argument("--devices", type=int, default=None)
    p.add_argument("--runtimes", type=int, default=None)
    p.add_argument("--sets-per-degree", type=int, default=None)
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--policy", default=None,
                   help="placement policy override "
                        "(greedy/flow/admission/random/utilization)")
    p.add_argument("--epochs", type=int, default=None,
                   help="scheduling epochs to simulate")
    p.add_argument("--jobs-per-epoch", type=int, default=None)
    p.add_argument("--warmup-events", type=int, default=None,
                   help="world-calibration window size")
    p.add_argument("--margin", default=None, choices=MARGIN_MODES,
                   help="conformal margin mode for the scheduler's live "
                        "recalibration")

    p = sub.add_parser(
        "sweep",
        help="parallel scenario sweeps over the artifact store",
    )
    sweep_sub = p.add_subparsers(dest="sweep_command", required=True)
    p = sweep_sub.add_parser(
        "run",
        help="expand a grid (scenarios x seeds x conformal modes x "
             "policies) into a deduplicated stage plan and run it on a "
             "worker pool",
    )
    p.add_argument("--grid", default=None,
                   help="JSON grid-spec file (keys: scenarios, seeds, "
                        "strategies, policies, stop_after, seed_streams, "
                        "overrides); axis flags below override it")
    p.add_argument("--scenarios", nargs="+", default=None,
                   help="scenario registry names (grid axis)")
    p.add_argument("--seeds", nargs="+", type=int, default=None,
                   help="replicate seeds (grid axis)")
    p.add_argument("--strategies", nargs="+", default=None,
                   choices=("pitot", "naive_cqr", "split"),
                   help="conformal modes (grid axis; omit = scenario default)")
    p.add_argument("--margins", nargs="+", default=None,
                   choices=MARGIN_MODES,
                   help="margin-engine modes (grid axis, orthogonal to "
                        "strategies; omit = scenario default)")
    p.add_argument("--policies", nargs="+", default=None,
                   help="scheduler policies (grid axis; needs "
                        "--stop-after simulate)")
    p.add_argument("--stop-after", default=None,
                   help="last pipeline stage per cell (default evaluate)")
    p.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                   dest="overrides",
                   help="leaf-knob override for every cell, e.g. "
                        "--set steps=40 (repeatable; JSON values)")
    p.add_argument("--store", default=".repro-cache",
                   help="artifact-store root shared by every cell")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = run inline)")
    p.add_argument("--start-method", choices=("fork", "spawn", "forkserver"),
                   default=None,
                   help="multiprocessing start method (platform default)")
    p.add_argument("--assert-warm", action="store_true",
                   help="exit 1 unless every task was a cache hit "
                        "(CI cache validation)")
    p.add_argument("--no-aggregate", action="store_true",
                   help="skip the replicate-aware comparison table")

    p = sub.add_parser(
        "store",
        help="inspect and maintain a content-addressed artifact store",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    p = store_sub.add_parser(
        "ls", help="list artifacts per stage (committed and partial)"
    )
    p.add_argument("--store", default=".repro-cache",
                   help="artifact-store root")
    p = store_sub.add_parser(
        "gc",
        help="prune uncommitted partial directories left by crashed runs",
    )
    p.add_argument("--store", default=".repro-cache",
                   help="artifact-store root")

    p = sub.add_parser("collect", help="run the simulated collection campaign")
    p.add_argument("output", help="output .npz dataset path")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workloads", type=int, default=None,
                   help="subsample the 249-workload population")
    p.add_argument("--devices", type=int, default=None)
    p.add_argument("--runtimes", type=int, default=None)
    p.add_argument("--sets-per-degree", type=int, default=250)

    p = sub.add_parser("train", help="train Pitot on a saved dataset")
    p.add_argument("dataset", help=".npz dataset from `collect`")
    p.add_argument("output", help="output .npz model path")
    p.add_argument("--fraction", type=float, default=0.8,
                   help="training fraction (rest is held-out test)")
    p.add_argument("--steps", type=int, default=2000)
    p.add_argument("--hidden", type=int, nargs="+", default=[128, 128])
    p.add_argument("--embedding-dim", type=int, default=32)
    p.add_argument("--quantiles", action="store_true",
                   help="train the multi-quantile (bound-predicting) model")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("evaluate", help="evaluate a saved model")
    p.add_argument("model", help=".npz model from `train`")
    p.add_argument("dataset", help=".npz dataset")
    p.add_argument("--fraction", type=float, default=0.8,
                   help="must match the `train` split to keep test honest")
    p.add_argument("--epsilon", type=float, default=None,
                   help="also report conformal bound quality at this rate")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("predict", help="predict one runtime")
    p.add_argument("model", help=".npz model from `train`")
    p.add_argument("--workload", type=int, required=True)
    p.add_argument("--platform", type=int, required=True)
    p.add_argument("--interferers", type=int, nargs="*", default=[])

    p = sub.add_parser(
        "serve",
        help="serve calibrated runtime budgets for a stream of queries",
    )
    p.add_argument("model", help=".npz model from `train`")
    p.add_argument("dataset", help=".npz dataset (calibration source)")
    p.add_argument("--queries", default=None,
                   help="query file, one 'workload platform [co-runners...]' "
                        "per line (default: stdin)")
    p.add_argument("--epsilon", type=float, nargs="+", default=[0.05],
                   help="miscoverage rates to calibrate and serve")
    p.add_argument("--fraction", type=float, default=0.8,
                   help="must match the `train` split to keep bounds honest")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="serve through N worker processes over one "
                        "shared-memory snapshot (1 = in-process)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="per-shard in-flight admission bound")
    p.add_argument("--start-method", choices=("spawn", "fork"),
                   default="spawn",
                   help="multiprocessing start method for shard workers")

    p = sub.add_parser(
        "bench-serve",
        help="benchmark serving throughput (cold vs snapshot vs cached)",
    )
    p.add_argument("model", help=".npz model from `train`")
    p.add_argument("dataset", help=".npz dataset")
    p.add_argument("--n-queries", type=int, default=10_000)
    p.add_argument("--cold-queries", type=int, default=200,
                   help="cap on per-call queries timed for the cold path")
    p.add_argument("--epsilon", type=float, default=0.05)
    p.add_argument("--fraction", type=float, default=0.8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--open-loop", action="store_true",
                   help="drive a live sharded service with an open-loop "
                        "arrival trace and report tail latencies instead "
                        "of the closed-loop path comparison")
    p.add_argument("--shards", type=int, default=2,
                   help="shard workers for --open-loop")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="per-shard admission bound for --open-loop")
    p.add_argument("--rate", type=float, default=500.0,
                   help="open-loop base arrival rate, queries/sec")
    p.add_argument("--duration", type=float, default=2.0,
                   help="open-loop trace horizon, seconds")
    p.add_argument("--zipf", type=float, default=0.0,
                   help="workload hot-key skew exponent (0 = uniform)")
    p.add_argument("--burst", type=float, default=1.0,
                   help="ON-window rate multiplier for heavy-tailed "
                        "ON/OFF bursts (1 = pure Poisson)")
    p.add_argument("--start-method", choices=("spawn", "fork"),
                   default="spawn",
                   help="multiprocessing start method for shard workers")

    p = sub.add_parser(
        "lint",
        help="check repo invariants (determinism, spec schema, "
             "swap-atomicity, ...) with the AST linter",
    )
    add_lint_arguments(p)
    return parser


# ----------------------------------------------------------------------
# Scenario / pipeline commands
# ----------------------------------------------------------------------
def _cmd_scenarios_list(args) -> int:
    for spec in iter_scenarios():
        print(f"{spec.name:24s} {spec.description}")
        if args.verbose:
            print(f"{'':24s} {spec.describe()}  hash={spec.spec_hash()[:12]}")
    return 0


def _cmd_pipeline_run(args) -> int:
    try:
        spec = get_scenario(args.scenario)
        spec = spec.scaled(
            n_workloads=args.workloads,
            n_devices=args.devices,
            n_runtimes=args.runtimes,
            sets_per_degree=args.sets_per_degree,
            steps=args.steps,
            margin=args.margin,
        )
    except (KeyError, ValueError) as exc:
        # Unknown scenario, or an override the scenario rejects (e.g.
        # --devices on a synthetic fleet).
        print(exc.args[0], file=sys.stderr)
        return 2
    store = None if args.no_store else args.store
    start = time.perf_counter()
    result = run_pipeline(spec, store=store, force=args.force)
    elapsed = time.perf_counter() - start

    print(f"scenario {spec.name} (spec {spec.spec_hash()[:12]})")
    for stage, key in result.stage_keys.items():
        status = "cached " if stage in result.cached else "run    "
        print(f"  {status} {stage:10s} {key[:16]}")
    for name in ("n_train", "n_calibration", "n_test",
                 "best_val_loss", "final_train_loss",
                 "mape_isolation", "mape_interference"):
        print(f"{name}: {result.metrics[name]}")
    for eps, stats in result.metrics["epsilons"].items():
        print(f"eps={eps}: coverage {stats['coverage']:.3f}, "
              f"margin {stats['margin']:.2%}")
    print(f"{len(result.executed)} stage(s) run, "
          f"{len(result.cached)} cached, {elapsed:.1f}s")
    if args.assert_warm and result.executed:
        print(f"expected a fully-warm run but executed: "
              f"{list(result.executed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_lifecycle_run(args) -> int:
    try:
        spec = get_scenario(args.scenario).scaled(
            n_workloads=args.workloads,
            n_devices=args.devices,
            n_runtimes=args.runtimes,
            sets_per_degree=args.sets_per_degree,
            steps=args.steps,
            events_per_phase=args.events_per_phase,
            chunk=args.chunk,
            update_steps=args.update_steps,
            margin=args.margin,
        )
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if not spec.drift.enabled:
        print(
            f"scenario {spec.name!r} defines no drift stream "
            f"(drift.enabled is false); pick a drift scenario such as "
            f"'drifting-fleet' (see `repro scenarios list`)",
            file=sys.stderr,
        )
        return 2
    store = ArtifactStore(args.store)
    keys = pipeline_stage_keys(spec)
    missing = [
        stage for stage in ("collect", "scale", "train", "calibrate")
        if not store.has(stage, keys[stage])
    ]
    if missing:
        print(
            f"no trained snapshot for scenario {spec.name!r} in store "
            f"{args.store!r} (missing stage(s): {', '.join(missing)}).\n"
            f"Train one first:\n"
            f"  repro pipeline run --scenario {spec.name} --store {args.store}",
            file=sys.stderr,
        )
        return 2

    start = time.perf_counter()
    result = run_pipeline(spec, store=store, stop_after="recalibrate")
    elapsed = time.perf_counter() - start
    epsilon = spec.conformal.epsilons[0]

    print(f"scenario {spec.name} (spec {spec.spec_hash()[:12]})")
    for stage in ("ingest", "update", "recalibrate"):
        status = "cached " if stage in result.cached else "run    "
        print(f"  {status} {stage:12s} {result.stage_keys[stage][:16]}")

    print(f"\ncoverage over time (eps={epsilon}, target >= {1 - epsilon:.2f}; "
          f"static = never recalibrated)")
    print(f"{'tick':>4s} {'phase':>5s} {'events':>6s} {'adaptive':>8s} "
          f"{'static':>8s} {'gen':>4s}  flags")
    for tick in result.lifecycle.ticks:
        flags = " ".join(
            name for name in ("reset", "promoted") if tick.get(name)
        )
        print(f"{tick['tick']:>4d} {tick['phase']:>5d} {tick['events']:>6d} "
              f"{tick['coverage_adaptive']:>8.3f} "
              f"{tick['coverage_static']:>8.3f} "
              f"{tick['generation']:>4d}  {flags}")

    phases = sorted({tick["phase"] for tick in result.lifecycle.ticks})
    print("\nper-phase mean coverage (adaptive vs static):")
    for phase in phases:
        rows = [t for t in result.lifecycle.ticks if t["phase"] == phase]
        events = sum(t["events"] for t in rows)
        adaptive = sum(
            t["coverage_adaptive"] * t["events"] for t in rows
        ) / events
        static = sum(t["coverage_static"] * t["events"] for t in rows) / events
        multiplier = spec.drift.phases[phase]
        print(f"  phase {phase} ({multiplier:g}x): "
              f"adaptive {adaptive:.3f}  static {static:.3f}")
    swaps = sum(1 for t in result.lifecycle.ticks if t["promoted"])
    print(f"\n{result.lifecycle.update_steps} warm-update step(s), "
          f"{swaps} atomic swap(s), {elapsed:.1f}s")
    if args.assert_warm and result.executed:
        print(f"expected a fully-warm lifecycle but executed: "
              f"{list(result.executed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_schedule_run(args) -> int:
    from .eval.reporting import format_schedule_table, percent

    try:
        spec = get_scenario(args.scenario).scaled(
            n_workloads=args.workloads,
            n_devices=args.devices,
            n_runtimes=args.runtimes,
            sets_per_degree=args.sets_per_degree,
            steps=args.steps,
            policy=args.policy,
            epochs=args.epochs,
            jobs_per_epoch=args.jobs_per_epoch,
            warmup_events=args.warmup_events,
            margin=args.margin,
        )
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if not spec.scheduling.enabled:
        print(
            f"scenario {spec.name!r} defines no scheduling simulation "
            f"(scheduling.enabled is false); pick a scheduling scenario "
            f"such as 'schedule' (see `repro scenarios list`)",
            file=sys.stderr,
        )
        return 2
    store = ArtifactStore(args.store)
    keys = pipeline_stage_keys(spec)
    missing = [
        stage for stage in ("collect", "scale", "train", "calibrate")
        if not store.has(stage, keys[stage])
    ]
    if missing:
        print(
            f"no trained snapshot for scenario {spec.name!r} in store "
            f"{args.store!r} (missing stage(s): {', '.join(missing)}).\n"
            f"Train one first:\n"
            f"  repro pipeline run --scenario {spec.name} --store {args.store}",
            file=sys.stderr,
        )
        return 2

    start = time.perf_counter()
    result = run_pipeline(
        spec, store=store, stop_after="simulate", needed_only=True
    )
    elapsed = time.perf_counter() - start
    report = result.schedule

    print(f"scenario {spec.name} (spec {spec.spec_hash()[:12]})")
    status = "cached " if "simulate" in result.cached else "run    "
    print(f"  {status} simulate     {result.stage_keys['simulate'][:16]}")
    print(
        f"\npolicy {report.policy} over {len(report.adaptive)} epoch(s), "
        f"{report.n_platforms} platform(s), epoch {report.epoch_seconds:.2f}s"
    )
    print(format_schedule_table(
        report.adaptive, report.static, report.epsilon, report.multipliers
    ))

    summary = report.summary
    adaptive, static = summary["adaptive"], summary["static"]
    def pct(value):
        return "-" if value is None else percent(value)
    print(f"\nplacement rate: adaptive {pct(adaptive['placement_rate'])}, "
          f"static {pct(static['placement_rate'])}")
    print(f"budget violations (target {percent(report.epsilon)}): "
          f"adaptive {pct(adaptive['budget_violation_rate'])}, "
          f"static {pct(static['budget_violation_rate'])}")
    steady_a = summary["steady_budget_violation_adaptive"]
    steady_s = summary["steady_budget_violation_static"]
    degradation = summary["degradation"]
    print(f"steady state (final drift regime): adaptive {pct(steady_a)}, "
          f"static {pct(steady_s)}"
          + (f" ({degradation:.1f}x degradation)" if degradation else ""))
    latency = adaptive["mean_decision_ms"]
    if latency is not None:
        print(f"decision latency: {latency:.3f} ms/job "
              f"({adaptive['decisions_per_second']:,.0f} decisions/s)")
    print(f"{adaptive['migrations']} migration(s), "
          f"{adaptive['promotions']} promotion(s), {elapsed:.1f}s")
    if args.assert_warm and result.executed:
        print(f"expected a fully-warm schedule run but executed: "
              f"{list(result.executed)}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Sweep / store commands
# ----------------------------------------------------------------------
def _cmd_sweep_run(args) -> int:
    import json

    from .eval.reporting import format_sweep_table
    from .pipeline.stages import stage_closure
    from .scenarios.grid import parse_grid
    from .sweep import aggregate_sweep, build_plan, execute_plan

    payload: dict = {}
    if args.grid is not None:
        try:
            payload = json.loads(open(args.grid).read())
        except (OSError, ValueError) as exc:
            print(f"cannot read grid {args.grid!r}: {exc}", file=sys.stderr)
            return 2
    for axis in ("scenarios", "seeds", "strategies", "margins", "policies"):
        if getattr(args, axis) is not None:
            payload[axis] = getattr(args, axis)
    if args.stop_after is not None:
        payload["stop_after"] = args.stop_after
    if args.overrides:
        overrides = dict(payload.get("overrides") or {})
        for item in args.overrides:
            key, sep, raw = item.partition("=")
            if not sep:
                print(f"--set needs KEY=VALUE, got {item!r}", file=sys.stderr)
                return 2
            try:
                overrides[key] = json.loads(raw)
            except ValueError:
                overrides[key] = raw
        payload["overrides"] = overrides
    try:
        grid = parse_grid(payload)
        plan = build_plan(grid)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    print(f"grid {grid.grid_hash()[:12]}: {len(plan.cells)} cell(s), "
          f"{len(plan.tasks)} unique task(s) "
          f"({plan.n_deduped} shared-ancestor run(s) deduped)")
    start = time.perf_counter()
    report = execute_plan(
        plan,
        args.store,
        workers=args.workers,
        start_method=args.start_method,
        echo=print,
    )
    elapsed = time.perf_counter() - start
    counts = report.executed_stage_counts()
    by_stage = " ".join(f"{stage}={n}" for stage, n in counts.items())
    print(f"{len(report.executed)} task(s) run, "
          f"{len(report.cached)} cached, {elapsed:.1f}s on "
          f"{args.workers} worker(s)" + (f"  [{by_stage}]" if by_stage else ""))

    # Aggregate whenever a metric-bearing stage ran: evaluate (batch
    # test metrics) and/or update (drift-phase lifecycle coverage).
    closure = stage_closure(grid.stop_after)
    if not args.no_aggregate and ("evaluate" in closure
                                  or "update" in closure):
        groups = aggregate_sweep(list(plan.cells), args.store)
        print()
        print(format_sweep_table(
            groups,
            title=f"sweep results (mean ± 2se across {len(grid.seeds)} "
                  f"seed(s))",
        ))
    if args.assert_warm and report.executed:
        print(f"expected a fully-warm sweep but executed: "
              f"{[r.task_id for r in report.executed]}", file=sys.stderr)
        return 1
    return 0


def _cmd_store_ls(args) -> int:
    store = ArtifactStore(args.store)
    entries = store.entries()
    if not entries:
        print(f"store {args.store!r} is empty")
        return 0
    print(f"{'stage':10s} {'key':24s} {'scenario':24s} "
          f"{'files':>5s} {'bytes':>10s}  state")
    committed = 0
    for entry in entries:
        scenario = str(entry.meta.get("scenario", "-"))
        state = "committed" if entry.committed else "PARTIAL"
        committed += entry.committed
        print(f"{entry.stage:10s} {entry.key_prefix:24s} {scenario:24s} "
              f"{entry.n_files:>5d} {entry.n_bytes:>10,d}  {state}")
    print(f"{committed} committed artifact(s), "
          f"{len(entries) - committed} partial")
    return 0


def _cmd_store_gc(args) -> int:
    store = ArtifactStore(args.store)
    removed = store.gc()
    for stage, key_prefix in removed:
        print(f"pruned {stage}/{key_prefix}")
    print(f"{len(removed)} partial artifact dir(s) pruned")
    return 0


# ----------------------------------------------------------------------
# One-off stage commands (thin wrappers over the pipeline stages)
# ----------------------------------------------------------------------
def _paper_split(dataset, fraction: float, seed: int,
                 epsilons: tuple[float, ...] | None = None):
    """The paper scenario at a caller's fraction/seed, plus its split.

    The one place the artifact-file commands (``evaluate``/``serve``/
    ``bench-serve``) derive their partition policy, so they cannot drift
    apart from each other or from ``train``.
    """
    spec = get_scenario("paper").scaled(
        train_fraction=fraction, epsilons=epsilons
    ).with_seeds(split=seed)
    return spec, make_scenario_split(spec, dataset)


def _cmd_collect(args) -> int:
    spec = get_scenario("paper").scaled(
        n_workloads=args.workloads,
        n_devices=args.devices,
        n_runtimes=args.runtimes,
        sets_per_degree=args.sets_per_degree,
    ).with_seeds(collect=args.seed)
    dataset = collect_stage(spec)
    dataset.save(args.output)
    summary = dataset.summary()
    for key, value in summary.items():
        print(f"{key}: {value:,}")
    print(f"saved to {args.output}")
    return 0


def _cmd_train(args) -> int:
    dataset = RuntimeDataset.load(args.dataset)
    # scaled() treats None as "keep the scenario default", so the
    # quantile knob is only passed when the flag actually sets it (the
    # paper spec is non-quantile by default).
    quantile_knob = {"quantiles": PAPER_QUANTILES} if args.quantiles else {}
    spec = get_scenario("paper").scaled(
        train_fraction=args.fraction,
        steps=args.steps,
        hidden=tuple(args.hidden),
        embedding_dim=args.embedding_dim,
        **quantile_knob,
    ).with_seeds(split=args.seed, train=args.seed)
    split = make_scenario_split(spec, dataset)
    result = train_stage(spec, split)
    save_model(result.model, args.output)
    print(f"trained {args.steps} steps; best val loss "
          f"{result.best_val_loss:.5f} @ step {result.best_step}")
    print(f"saved to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    model = load_model(args.model)
    dataset = RuntimeDataset.load(args.dataset)
    spec, split = _paper_split(
        dataset, args.fraction, args.seed,
        epsilons=None if args.epsilon is None else (args.epsilon,),
    )
    test = split.test
    pred = model.predict_runtime(test.w_idx, test.p_idx, test.interferers)
    iso = test.isolation_mask()
    print(f"test rows: {test.n_observations:,}")
    print(f"MAPE without interference: {mape(pred[iso], test.runtime[iso]):.2%}")
    print(f"MAPE with interference:    {mape(pred[~iso], test.runtime[~iso]):.2%}")

    if args.epsilon is not None:
        cp = calibrate_stage(spec, model, split)
        bound = cp.predict_bound_dataset(test, args.epsilon)
        print(f"eps={args.epsilon}: coverage "
              f"{coverage(bound, test.runtime):.3f}, margin "
              f"{overprovision_margin(bound, test.runtime):.2%}")
    return 0


def _cmd_predict(args) -> int:
    model = load_model(args.model)
    if not 0 <= args.workload < model.n_workloads:
        print(f"workload index out of range [0, {model.n_workloads})",
              file=sys.stderr)
        return 2
    if not 0 <= args.platform < model.n_platforms:
        print(f"platform index out of range [0, {model.n_platforms})",
              file=sys.stderr)
        return 2
    interferers = None
    if args.interferers:
        if len(args.interferers) > MAX_INTERFERERS:
            print(f"at most {MAX_INTERFERERS} interferers supported",
                  file=sys.stderr)
            return 2
        if not all(0 <= i < model.n_workloads for i in args.interferers):
            print(f"interferer index out of range [0, {model.n_workloads})",
                  file=sys.stderr)
            return 2
        interferers = pad_interferers([args.interferers])
    runtime = model.predict_runtime(
        np.array([args.workload]), np.array([args.platform]), interferers
    )[0]
    print(f"predicted runtime: {runtime:.6f} s")
    return 0


def _calibrated_service(args, epsilons: tuple[float, ...]) -> PredictionService:
    """Load model + dataset, calibrate, and wrap for serving."""
    model = load_model(args.model)
    dataset = RuntimeDataset.load(args.dataset)
    _, split = _paper_split(dataset, args.fraction, args.seed)
    return PredictionService.from_model(
        model, split.calibration, epsilons=epsilons
    )


def _parse_query_line(line: str, validate):
    """Parse 'workload platform [co-runners...]'; None for comments/blank.

    Range limits are enforced by ``validate`` (the service's
    ``validate_query``) so the CLI and the queue API share one set of
    rules across the in-process and sharded front-ends.
    """
    stripped = line.split("#", 1)[0].strip()
    if not stripped:
        return None
    parts = [int(tok) for tok in stripped.split()]
    if len(parts) < 2:
        raise ValueError(f"need 'workload platform [co-runners...]': {line!r}")
    workload, platform, *co = parts
    return validate(workload, platform, co)


def _read_queries(args, validate):
    """Queries from ``--queries`` or stdin; ``None`` (after printing) on
    a read or parse failure."""
    if args.queries:
        try:
            lines = open(args.queries, encoding="utf-8")
        except OSError as exc:
            print(f"cannot read queries: {exc}", file=sys.stderr)
            return None
    else:
        lines = sys.stdin
    try:
        queries = []
        for line in lines:
            try:
                parsed = _parse_query_line(line, validate)
            except ValueError as exc:
                print(f"bad query: {exc}", file=sys.stderr)
                return None
            if parsed is not None:
                queries.append(parsed)
    finally:
        if args.queries:
            lines.close()
    return queries


def _check_epsilons(epsilons) -> bool:
    bad = [eps for eps in epsilons if not 0.0 < eps < 1.0]
    if bad:
        print(f"epsilon must be in (0, 1), got {bad}", file=sys.stderr)
    return not bad


def _print_serving_stats(stats: dict, generation: int) -> None:
    """The shared ``serve`` epilogue: cache, swap, and topology counters."""
    print(f"cache: {stats['cache_hits']} hit(s) / {stats['cache_misses']} "
          f"miss(es), hit rate {stats['hit_rate']:.1%}; "
          f"swaps: {stats['swaps']} "
          f"(invalidations: {stats['invalidations']}); "
          f"generation {generation}")
    print(f"topology: {stats['shards']} shard(s), queue depth "
          f"{stats['queue_depth']}, rejections {stats['rejections']}")


def _cmd_serve(args) -> int:
    epsilons = tuple(args.epsilon)
    if not _check_epsilons(epsilons):
        return 2
    if args.shards < 1 or args.queue_depth < 1:
        print("--shards and --queue-depth must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1:
        return _cmd_serve_sharded(args, epsilons)
    service = _calibrated_service(args, epsilons)
    queries = _read_queries(args, service.validate_query)
    if queries is None:
        return 2

    # One shared forward serves every ε (predict_log is ε-independent).
    w = np.array([q[0] for q in queries], dtype=np.intp)
    p = np.array([q[1] for q in queries], dtype=np.intp)
    ints = pad_interferers([co for _, _, co in queries])
    bounds = service.predict_bound_sweep(w, p, ints, epsilons)
    for i, (workload, platform, co) in enumerate(queries):
        budgets = " ".join(
            f"bound[eps={eps}]={bounds[i, j]:.6f}s"
            for j, eps in enumerate(epsilons)
        )
        co_text = ",".join(map(str, co)) if co else "-"
        print(f"workload={workload} platform={platform} co={co_text} {budgets}")
    print(f"served {len(queries)} queries in {service.stats.batches} "
          f"batches ({len(epsilons)} epsilon(s) from one forward pass)")
    _print_serving_stats(service.stats.as_dict(), service.generation)
    return 0


def _cmd_serve_sharded(args, epsilons: tuple[float, ...]) -> int:
    """``serve --shards N``: answer the stream through worker processes
    sharing one read-only shared-memory snapshot."""
    model = load_model(args.model)
    dataset = RuntimeDataset.load(args.dataset)
    spec, split = _paper_split(
        dataset, args.fraction, args.seed, epsilons=epsilons
    )
    predictor = calibrate_stage(spec, model, split)
    service = ShardedPredictionService.from_predictor(
        predictor,
        n_shards=args.shards,
        queue_depth=args.queue_depth,
        start_method=args.start_method,
    )
    try:
        queries = _read_queries(args, service.validate_query)
        if queries is None:
            return 2
        w = np.array([q[0] for q in queries], dtype=np.intp)
        p = np.array([q[1] for q in queries], dtype=np.intp)
        ints = pad_interferers([co for _, _, co in queries])
        per_eps = {
            eps: service.predict_bound(w, p, ints, eps) for eps in epsilons
        }
        for i, (workload, platform, co) in enumerate(queries):
            budgets = " ".join(
                f"bound[eps={eps}]={per_eps[eps][i]:.6f}s"
                for eps in epsilons
            )
            co_text = ",".join(map(str, co)) if co else "-"
            print(f"workload={workload} platform={platform} co={co_text} "
                  f"{budgets}")
        stats = service.collect_stats()
        print(f"served {len(queries)} queries across {stats.shards} "
              f"shard(s) in {stats.batches} batches")
        _print_serving_stats(stats.as_dict(), service.generation)
    finally:
        audit = service.close()
    print(f"shared-memory audit: published {audit['published']}, "
          f"reclaimed {audit['reclaimed']}, leaked {audit['leaked']}")
    return 0 if audit["leaked"] == 0 else 1


def _cmd_bench_serve_open_loop(args, epsilon: float) -> int:
    """``bench-serve --open-loop``: wall-clock tail latencies of a live
    sharded service under scheduled (coordinated-omission-free) load."""
    from .serving.loadgen import OpenLoopConfig, drive_open_loop, generate_trace

    if args.shards < 1 or args.queue_depth < 1:
        print("--shards and --queue-depth must be >= 1", file=sys.stderr)
        return 2
    try:
        config = OpenLoopConfig(
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            zipf_s=args.zipf,
            burst_multiplier=args.burst,
            epsilon=epsilon,
        )
    except ValueError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    model = load_model(args.model)
    dataset = RuntimeDataset.load(args.dataset)
    spec, split = _paper_split(
        dataset, args.fraction, args.seed, epsilons=(epsilon,)
    )
    predictor = calibrate_stage(spec, model, split)
    trace = generate_trace(config, model.n_workloads, model.n_platforms)
    service = ShardedPredictionService.from_predictor(
        predictor,
        n_shards=args.shards,
        queue_depth=args.queue_depth,
        start_method=args.start_method,
    )
    try:
        result = drive_open_loop(service, trace)
        stats = service.collect_stats()
        generation = service.generation
    finally:
        audit = service.close()

    def ms(value: float) -> str:
        return "n/a" if value != value else f"{1000.0 * value:.2f} ms"

    pct = result.percentiles()
    print(f"open loop: {result.offered} queries over {config.duration:g}s "
          f"({trace.offered_rate:,.0f} q/s offered, zipf_s={args.zipf:g}, "
          f"burst={args.burst:g}x)")
    print(f"completed {result.completed}, dropped {result.dropped}, "
          f"rejections {result.rejections} "
          f"({100.0 * result.reject_rate:.1f}% of offered)")
    print(f"throughput: {result.throughput:,.0f} q/s over "
          f"{result.makespan:.2f}s makespan")
    print(f"latency from scheduled arrival: p50 {ms(pct['p50'])}, "
          f"p99 {ms(pct['p99'])}, p999 {ms(pct['p999'])}")
    _print_serving_stats(stats.as_dict(), generation)
    print(f"shared-memory audit: published {audit['published']}, "
          f"reclaimed {audit['reclaimed']}, leaked {audit['leaked']}")
    return 0 if audit["leaked"] == 0 else 1


def _cmd_bench_serve(args) -> int:
    epsilon = float(args.epsilon)
    if not _check_epsilons((epsilon,)):
        return 2
    if args.open_loop:
        return _cmd_bench_serve_open_loop(args, epsilon)
    if args.n_queries < 1 or args.cold_queries < 1:
        print("--n-queries and --cold-queries must be >= 1", file=sys.stderr)
        return 2
    model = load_model(args.model)
    dataset = RuntimeDataset.load(args.dataset)
    spec, split = _paper_split(
        dataset, args.fraction, args.seed, epsilons=(epsilon,)
    )
    predictor = calibrate_stage(spec, model, split)

    rng = np.random.default_rng(args.seed)
    test = split.test
    rows = rng.integers(0, test.n_observations, size=args.n_queries)
    w, p, k = test.w_idx[rows], test.p_idx[rows], test.interferers[rows]

    # Cold: the pre-snapshot serving story — one model forward per query.
    n_cold = min(args.cold_queries, args.n_queries)
    start = time.perf_counter()
    for i in range(n_cold):
        predictor.predict_bound(w[i : i + 1], p[i : i + 1], k[i : i + 1],
                                epsilon)
    cold_rate = n_cold / (time.perf_counter() - start)

    # Snapshot: vectorized inference-only forward, no memoization.
    service = PredictionService.from_predictor(predictor, cache_size=0)
    start = time.perf_counter()
    snapshot_bounds = service.predict_bound(w, p, k, epsilon)
    snapshot_rate = args.n_queries / (time.perf_counter() - start)

    # Cached: steady state once the LRU has seen the working set.
    cached_service = PredictionService.from_predictor(predictor)
    cached_service.predict_bound(w, p, k, epsilon)  # warm
    warm_hits, warm_misses = (
        cached_service.cache.hits, cached_service.cache.misses
    )
    start = time.perf_counter()
    cached_bounds = cached_service.predict_bound(w, p, k, epsilon)
    cached_rate = args.n_queries / (time.perf_counter() - start)
    steady_lookups = (
        cached_service.cache.hits - warm_hits
        + cached_service.cache.misses - warm_misses
    )
    steady_hit_rate = (
        (cached_service.cache.hits - warm_hits) / steady_lookups
        if steady_lookups
        else 0.0
    )

    reference = predictor.predict_bound(w[:256], p[:256], k[:256], epsilon)
    max_diff = float(np.abs(snapshot_bounds[:256] - reference).max())

    print(f"queries: {args.n_queries:,} (cold path timed on {n_cold})")
    print(f"cold per-call:  {cold_rate:12,.0f} q/s")
    print(f"snapshot batch: {snapshot_rate:12,.0f} q/s "
          f"({snapshot_rate / cold_rate:,.1f}x cold)")
    print(f"cached (LRU):   {cached_rate:12,.0f} q/s "
          f"({cached_rate / cold_rate:,.1f}x cold, steady-state hit rate "
          f"{steady_hit_rate:.1%})")
    print(f"max |snapshot - model| bound deviation: {max_diff:.2e} s")
    print(np.allclose(snapshot_bounds, cached_bounds, rtol=0, atol=1e-10)
          and "cached bounds match snapshot bounds (atol 1e-10)"
          or "WARNING: cached bounds deviate from snapshot bounds")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "scenarios":
        return _cmd_scenarios_list(args)
    if args.command == "pipeline":
        return _cmd_pipeline_run(args)
    if args.command == "lifecycle":
        return _cmd_lifecycle_run(args)
    if args.command == "schedule":
        return _cmd_schedule_run(args)
    if args.command == "sweep":
        return _cmd_sweep_run(args)
    if args.command == "store":
        return _cmd_store_ls(args) if args.store_command == "ls" \
            else _cmd_store_gc(args)
    if args.command == "lint":
        return _run_lint(args)
    handler = {
        "collect": _cmd_collect,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "predict": _cmd_predict,
        "serve": _cmd_serve,
        "bench-serve": _cmd_bench_serve,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
