"""WebAssembly opcode inventory.

The paper's workload features are the execution counts of every WASM opcode,
collected with an instrumented WAMR fast interpreter (App C.2). We cannot run
that interpreter offline, so :mod:`repro.workloads.synthesis` generates
opcode-count vectors over this inventory; the inventory itself mirrors the
WebAssembly 1.0 core instruction set grouped into the categories that drive
the cluster simulator's cost model (integer vs float vs memory vs control).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["OpcodeCategory", "Opcode", "OPCODES", "OPCODE_NAMES", "category_matrix"]


class OpcodeCategory(str, Enum):
    """Coarse instruction classes used by the performance model."""

    CONTROL = "control"
    PARAMETRIC = "parametric"
    VARIABLE = "variable"
    MEMORY = "memory"
    CONST = "const"
    INT_ARITH = "int_arith"
    INT_DIV = "int_div"
    FLOAT_ARITH = "float_arith"
    FLOAT_SPECIAL = "float_special"
    CONVERSION = "conversion"


@dataclass(frozen=True)
class Opcode:
    """A single WebAssembly instruction."""

    name: str
    category: OpcodeCategory
    #: Relative baseline cost on a reference AOT platform; interpreters and
    #: weak devices scale these per-category (see ``cluster.performance``).
    base_cost: float


def _build_opcodes() -> list[Opcode]:
    ops: list[Opcode] = []

    def add(names: list[str], cat: OpcodeCategory, cost: float) -> None:
        ops.extend(Opcode(n, cat, cost) for n in names)

    add(
        [
            "unreachable", "nop", "block", "loop", "if", "else", "end",
            "br", "br_if", "br_table", "return", "call", "call_indirect",
        ],
        OpcodeCategory.CONTROL,
        1.5,
    )
    add(["drop", "select"], OpcodeCategory.PARAMETRIC, 1.0)
    add(
        ["local.get", "local.set", "local.tee", "global.get", "global.set"],
        OpcodeCategory.VARIABLE,
        1.0,
    )

    loads = [
        "i32.load", "i64.load", "f32.load", "f64.load",
        "i32.load8_s", "i32.load8_u", "i32.load16_s", "i32.load16_u",
        "i64.load8_s", "i64.load8_u", "i64.load16_s", "i64.load16_u",
        "i64.load32_s", "i64.load32_u",
    ]
    stores = [
        "i32.store", "i64.store", "f32.store", "f64.store",
        "i32.store8", "i32.store16", "i64.store8", "i64.store16",
        "i64.store32",
    ]
    add(loads + stores, OpcodeCategory.MEMORY, 2.5)
    add(["memory.size", "memory.grow", "memory.copy", "memory.fill"], OpcodeCategory.MEMORY, 4.0)

    add(["i32.const", "i64.const", "f32.const", "f64.const"], OpcodeCategory.CONST, 0.5)

    int_cmp = ["eqz", "eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u"]
    int_alu = ["clz", "ctz", "popcnt", "add", "sub", "mul", "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr"]
    int_div = ["div_s", "div_u", "rem_s", "rem_u"]
    for prefix in ("i32", "i64"):
        add([f"{prefix}.{op}" for op in int_cmp + int_alu], OpcodeCategory.INT_ARITH, 1.0)
        add([f"{prefix}.{op}" for op in int_div], OpcodeCategory.INT_DIV, 8.0)

    float_cmp = ["eq", "ne", "lt", "gt", "le", "ge"]
    float_alu = ["abs", "neg", "add", "sub", "mul", "min", "max", "copysign"]
    float_special = ["ceil", "floor", "trunc", "nearest", "sqrt", "div"]
    for prefix in ("f32", "f64"):
        add([f"{prefix}.{op}" for op in float_cmp + float_alu], OpcodeCategory.FLOAT_ARITH, 2.0)
        add([f"{prefix}.{op}" for op in float_special], OpcodeCategory.FLOAT_SPECIAL, 10.0)

    add(
        [
            "i32.wrap_i64",
            "i32.trunc_f32_s", "i32.trunc_f32_u", "i32.trunc_f64_s", "i32.trunc_f64_u",
            "i64.extend_i32_s", "i64.extend_i32_u",
            "i64.trunc_f32_s", "i64.trunc_f32_u", "i64.trunc_f64_s", "i64.trunc_f64_u",
            "f32.convert_i32_s", "f32.convert_i32_u", "f32.convert_i64_s", "f32.convert_i64_u",
            "f32.demote_f64",
            "f64.convert_i32_s", "f64.convert_i32_u", "f64.convert_i64_s", "f64.convert_i64_u",
            "f64.promote_f32",
            "i32.reinterpret_f32", "i64.reinterpret_f64",
            "f32.reinterpret_i32", "f64.reinterpret_i64",
        ],
        OpcodeCategory.CONVERSION,
        3.0,
    )
    return ops


#: The full opcode inventory, in a fixed deterministic order.
OPCODES: list[Opcode] = _build_opcodes()

#: Opcode mnemonics aligned with the columns of every opcode-count vector.
OPCODE_NAMES: list[str] = [op.name for op in OPCODES]

_CATEGORY_LIST = list(OpcodeCategory)


def category_matrix():
    """Binary ``(n_opcodes, n_categories)`` membership matrix.

    Multiplying an opcode-count vector by this matrix aggregates counts per
    category — the cluster simulator prices execution per category.
    """
    import numpy as np

    mat = np.zeros((len(OPCODES), len(_CATEGORY_LIST)))
    for row, op in enumerate(OPCODES):
        mat[row, _CATEGORY_LIST.index(op.category)] = 1.0
    return mat
