"""Workload synthesis: opcode-count vectors and latent resource profiles.

The real dataset profiles each benchmark once on an instrumented interpreter
to obtain opcode execution counts (App C.2). Here each workload is drawn
from its suite's instruction-mix prior:

* a **total operation count** sets the workload's intrinsic difficulty
  (spanning ~5 orders of magnitude, like the paper's mix of microsecond
  crypto primitives and multi-second Python programs);
* a **category mix** (suite Dirichlet prior + per-benchmark jitter) splits
  the total across opcode categories;
* per-category **Zipf weights** split category totals across individual
  opcodes, reproducing the "several order-of-magnitude differences between
  rare and common instructions" the paper log-transforms away.

The latent fields (``memory_pressure``, ``compute_pressure``,
``io_pressure``) are *not* exposed as features — they parameterize the
cluster simulator's ground-truth interference, and the model must infer
their effect from observations, exactly as Pitot must on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .opcodes import OPCODES, OpcodeCategory
from .suites import SUITES, SuiteSpec, enumerate_workload_specs

__all__ = ["Workload", "generate_workloads", "workload_feature_matrix"]

_CATEGORIES = list(OpcodeCategory)
_OPS_BY_CATEGORY = {
    cat: [idx for idx, op in enumerate(OPCODES) if op.category == cat]
    for cat in _CATEGORIES
}


@dataclass
class Workload:
    """One uniquely-identifiable workload (Sec 3.1 assumption 1).

    Attributes
    ----------
    index:
        Position in the global workload list (the ``i`` of the paper).
    suite, benchmark, size:
        Identity; ``name`` is the canonical ``suite/benchmark@size`` string.
    opcode_counts:
        Execution counts per opcode (aligned with ``OPCODE_NAMES``).
    log10_ref_seconds:
        Ground-truth log10 runtime on the reference platform. Hidden from
        the predictor.
    category_mix:
        Fraction of dynamic instructions per category. Hidden; features
        expose only the (noisy, log-transformed) opcode counts.
    memory_pressure, compute_pressure, io_pressure:
        Latent [0, 1] contention profiles used by the interference ground
        truth. Partially correlated with the opcode mix.
    """

    index: int
    suite: str
    benchmark: str
    size: str
    opcode_counts: np.ndarray
    log10_ref_seconds: float
    category_mix: np.ndarray
    memory_pressure: float
    compute_pressure: float
    io_pressure: float

    @property
    def name(self) -> str:
        return f"{self.suite}/{self.benchmark}@{self.size}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Workload({self.name})"


def _size_offset(suite: SuiteSpec, size: str) -> float:
    """Log10-seconds offset of a size variant within the suite's range."""
    lo, hi = suite.log_seconds_range
    n = len(suite.sizes)
    if n == 1:
        return 0.0
    # Variants are spread over ~70% of the suite's range.
    span = 0.7 * (hi - lo)
    return (suite.sizes.index(size) / (n - 1) - 0.5) * span


def generate_workloads(
    rng: np.random.Generator,
    suites: tuple[SuiteSpec, ...] = SUITES,
    subset: int | None = None,
) -> list[Workload]:
    """Generate the full 249-workload population (or a ``subset`` prefix).

    Randomness is suite-structured: benchmarks within a suite share the
    suite mix prior, and size variants of one benchmark share the
    benchmark's mix (only the total count changes) — matching how input
    size changes dynamic counts but not instruction composition.
    """
    workloads: list[Workload] = []
    specs = enumerate_workload_specs()
    if any(s[0] not in SUITES for s in specs) and suites is not SUITES:
        pass  # custom suites handled below
    if suites is not SUITES:
        specs = [
            (suite, bench, size)
            for suite in suites
            for bench in suite.benchmarks
            for size in suite.sizes
        ]

    # Per-benchmark draws are cached so size variants share them.
    bench_mix: dict[tuple[str, str], np.ndarray] = {}
    bench_zipf: dict[tuple[str, str], np.ndarray] = {}
    bench_base_log: dict[tuple[str, str], float] = {}

    for index, (suite, bench, size) in enumerate(specs):
        if subset is not None and index >= subset:
            break
        key = (suite.name, bench)
        if key not in bench_mix:
            prior = np.array([suite.mix_prior.get(c, 1e-4) for c in _CATEGORIES])
            prior = prior / prior.sum()
            bench_mix[key] = rng.dirichlet(prior * suite.mix_concentration)
            # Zipf-ish weights over opcodes within each category.
            weights = np.zeros(len(OPCODES))
            for cat in _CATEGORIES:
                ops = _OPS_BY_CATEGORY[cat]
                ranks = rng.permutation(len(ops)) + 1
                w = 1.0 / ranks**1.1
                # A benchmark touches only a subset of each category.
                active = rng.random(len(ops)) < 0.75
                if not active.any():
                    active[rng.integers(len(ops))] = True
                w = w * active
                weights[ops] = w / max(w.sum(), 1e-12)
            bench_zipf[key] = weights
            lo, hi = suite.log_seconds_range
            bench_base_log[key] = rng.uniform(lo, hi)

        mix = bench_mix[key]
        log10_seconds = bench_base_log[key] + _size_offset(suite, size)
        # Total dynamic ops: anchored to runtime (~1e9 simple ops/sec on the
        # reference platform) with benchmark-specific efficiency jitter.
        total_ops = 10 ** (log10_seconds + 9.0 + rng.normal(0.0, 0.15))

        counts = np.zeros(len(OPCODES))
        for ci, cat in enumerate(_CATEGORIES):
            ops = _OPS_BY_CATEGORY[cat]
            w = bench_zipf[key][ops]
            counts[ops] = total_ops * mix[ci] * w
        counts = np.floor(counts)

        mem_frac = mix[_CATEGORIES.index(OpcodeCategory.MEMORY)]
        float_frac = (
            mix[_CATEGORIES.index(OpcodeCategory.FLOAT_ARITH)]
            + mix[_CATEGORIES.index(OpcodeCategory.FLOAT_SPECIAL)]
        )
        # Latent pressures: driven by the mix but with independent noise so
        # features are informative-yet-incomplete (motivating the learned
        # features φ of Sec 3.3).
        memory_pressure = float(np.clip(mem_frac * 2.4 + rng.normal(0, 0.12), 0, 1))
        compute_pressure = float(
            np.clip(0.35 + float_frac * 1.2 + rng.normal(0, 0.15), 0, 1)
        )
        io_pressure = float(np.clip(rng.beta(1.2, 6.0), 0, 1))

        workloads.append(
            Workload(
                index=index,
                suite=suite.name,
                benchmark=bench,
                size=size,
                opcode_counts=counts,
                log10_ref_seconds=log10_seconds,
                category_mix=mix,
                memory_pressure=memory_pressure,
                compute_pressure=compute_pressure,
                io_pressure=io_pressure,
            )
        )
    return workloads


def workload_feature_matrix(
    workloads: list[Workload],
    prune_unused: bool = True,
) -> tuple[np.ndarray, list[str]]:
    """Encode workload side information ``x_w``: log opcode frequencies.

    Applies the paper's transform ``f(n) = log(n + 1)`` and drops opcodes
    never executed by any workload (App C.2).

    Returns
    -------
    features:
        ``(n_workloads, n_features)`` array.
    names:
        Retained opcode mnemonics, one per feature column.
    """
    from .opcodes import OPCODE_NAMES

    raw = np.stack([w.opcode_counts for w in workloads])
    names = list(OPCODE_NAMES)
    if prune_unused:
        used = raw.sum(axis=0) > 0
        raw = raw[:, used]
        names = [n for n, keep in zip(names, used) if keep]
    return np.log1p(raw), names
