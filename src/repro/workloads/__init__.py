"""Workload substrate: benchmark suites, opcode inventory, synthesis.

Reconstructs the paper's 249-workload population (Sec 4): six suites with
size variants, per-workload opcode-count vectors (the side information
``x_w``), and the hidden resource-pressure profiles the cluster simulator
uses to generate interference.
"""

from .phases import PhaseDetector, PhaseSegment, detect_phase_shifts, split_phases
from .opcodes import OPCODE_NAMES, OPCODES, Opcode, OpcodeCategory, category_matrix
from .suites import SUITES, SuiteSpec, enumerate_workload_specs, suite_names
from .workload import Workload, generate_workloads, workload_feature_matrix

__all__ = [
    "Opcode",
    "OpcodeCategory",
    "OPCODES",
    "OPCODE_NAMES",
    "category_matrix",
    "SuiteSpec",
    "SUITES",
    "suite_names",
    "enumerate_workload_specs",
    "Workload",
    "PhaseDetector",
    "PhaseSegment",
    "detect_phase_shifts",
    "split_phases",
    "generate_workloads",
    "workload_feature_matrix",
]
