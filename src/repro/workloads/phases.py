"""Workload phase-shift detection (operationalizing a Sec 3.1 assumption).

The paper assumes "if the nature of a workload changes, this can be
identified externally... the new phase treated as a new workload". This
module provides that external identification from observed runtimes: a
two-sided CUSUM detector on log-runtimes flags sustained level shifts
(e.g., a data-dependent program fed a new input distribution), and
:func:`split_phases` rewrites an observation history into per-phase
pseudo-workloads ready for re-training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PhaseDetector", "PhaseSegment", "detect_phase_shifts", "split_phases"]


@dataclass(frozen=True)
class PhaseSegment:
    """One detected phase: rows ``[start, end)`` of the input sequence."""

    start: int
    end: int
    mean_log_runtime: float

    @property
    def length(self) -> int:
        return self.end - self.start


class PhaseDetector:
    """Two-sided CUSUM on standardized log-runtimes.

    Parameters
    ----------
    threshold:
        Detection threshold in reference-σ units (h of the CUSUM).
    slack:
        Allowance k: drifts below ``slack`` σ are ignored — runtime jitter
        and interference noise must not trigger phase splits.
    min_segment:
        Minimum observations per phase; shifts detected earlier are
        deferred until the current phase has this many points.
    """

    def __init__(self, threshold: float = 8.0, slack: float = 0.5,
                 min_segment: int = 10) -> None:
        if threshold <= 0 or slack < 0:
            raise ValueError("threshold must be > 0 and slack >= 0")
        if min_segment < 2:
            raise ValueError("min_segment must be >= 2")
        self.threshold = threshold
        self.slack = slack
        self.min_segment = min_segment

    def detect(self, log_runtimes: np.ndarray) -> list[int]:
        """Change-point indices (start of each new phase, ascending)."""
        y = np.asarray(log_runtimes, dtype=np.float64)
        if len(y) < 2 * self.min_segment:
            return []
        changes: list[int] = []
        start = 0
        while start < len(y) - self.min_segment:
            ref = y[start : start + self.min_segment]
            mu, sigma = float(ref.mean()), float(ref.std())
            sigma = max(sigma, 1e-6, 0.05 * abs(mu) if mu else 1e-6)
            pos = neg = 0.0
            shift_at = None
            for t in range(start + self.min_segment, len(y)):
                z = (y[t] - mu) / sigma
                pos = max(0.0, pos + z - self.slack)
                neg = max(0.0, neg - z - self.slack)
                if pos > self.threshold or neg > self.threshold:
                    shift_at = t
                    break
            if shift_at is None:
                break
            changes.append(shift_at)
            start = shift_at
        return changes


def detect_phase_shifts(
    log_runtimes: np.ndarray,
    threshold: float = 8.0,
    slack: float = 0.5,
    min_segment: int = 10,
) -> list[PhaseSegment]:
    """Segment a runtime history into phases."""
    y = np.asarray(log_runtimes, dtype=np.float64)
    detector = PhaseDetector(threshold=threshold, slack=slack,
                             min_segment=min_segment)
    changes = detector.detect(y)
    bounds = [0, *changes, len(y)]
    return [
        PhaseSegment(start=lo, end=hi, mean_log_runtime=float(y[lo:hi].mean()))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def split_phases(
    workload_ids: np.ndarray,
    timestamps: np.ndarray,
    log_runtimes: np.ndarray,
    **detector_kwargs,
) -> np.ndarray:
    """Assign phase-qualified workload ids across a mixed history.

    Observations are grouped by workload, ordered by ``timestamps``, and
    each detected phase after the first receives a fresh id (appended
    after the existing id space) — the paper's "treat the new phase as a
    new workload".

    Returns the new id per observation (same order as the inputs).
    """
    workload_ids = np.asarray(workload_ids)
    timestamps = np.asarray(timestamps)
    log_runtimes = np.asarray(log_runtimes, dtype=np.float64)
    if not (len(workload_ids) == len(timestamps) == len(log_runtimes)):
        raise ValueError("inputs must align")

    new_ids = workload_ids.copy()
    next_id = int(workload_ids.max()) + 1 if len(workload_ids) else 0
    for workload in np.unique(workload_ids):
        rows = np.flatnonzero(workload_ids == workload)
        order = rows[np.argsort(timestamps[rows], kind="stable")]
        segments = detect_phase_shifts(log_runtimes[order], **detector_kwargs)
        for segment in segments[1:]:
            new_ids[order[segment.start : segment.end]] = next_id
            next_id += 1
    return new_ids
