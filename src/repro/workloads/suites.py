"""The six benchmark suites of the paper's dataset (Sec 4).

249 workloads total, matching the paper's accounting where the same binary
with a different input size is a separate workload (Sec 4 "Limitations").
Suite composition drives the synthetic instruction mix: Polybench is
float/memory heavy, Libsodium is integer/bit-op heavy, Python workloads are
control/indirect-call heavy (interpreter on interpreter), etc.
"""

from __future__ import annotations

from dataclasses import dataclass

from .opcodes import OpcodeCategory

__all__ = ["SuiteSpec", "SUITES", "suite_names", "enumerate_workload_specs"]


@dataclass(frozen=True)
class SuiteSpec:
    """Static description of one benchmark suite.

    Attributes
    ----------
    name:
        Suite identifier as used in Figs 7/12a.
    benchmarks:
        Benchmark program names.
    sizes:
        Input-size variants; each (benchmark, size) pair is one workload.
    mix_prior:
        Dirichlet-style prior over opcode categories — the suite's
        characteristic instruction mix.
    log_seconds_range:
        Range of log10 runtime (in seconds) on the reference platform
        (fast x86 + LLVM AOT); sizes shift within this range.
    mix_concentration:
        Dirichlet concentration: large = benchmarks in the suite share a
        homogeneous mix (Polybench/Libsodium cluster tightly in Fig 7),
        small = diverse suite (MiBench).
    """

    name: str
    benchmarks: tuple[str, ...]
    sizes: tuple[str, ...]
    mix_prior: dict[OpcodeCategory, float]
    log_seconds_range: tuple[float, float]
    mix_concentration: float

    @property
    def n_workloads(self) -> int:
        return len(self.benchmarks) * len(self.sizes)


C = OpcodeCategory

_POLYBENCH = SuiteSpec(
    name="polybench",
    benchmarks=(
        "2mm", "3mm", "adi", "atax", "bicg", "cholesky", "correlation",
        "covariance", "deriche", "doitgen", "durbin", "fdtd-2d",
        "floyd-warshall", "gemm", "gemver", "gesummv", "gramschmidt",
        "heat-3d", "jacobi-1d", "jacobi-2d", "lu", "ludcmp", "mvt",
        "nussinov", "seidel-2d", "symm", "syr2k", "syrk", "trisolv", "trmm",
    ),
    sizes=("small", "medium"),
    mix_prior={
        C.CONTROL: 0.04, C.PARAMETRIC: 0.01, C.VARIABLE: 0.18, C.MEMORY: 0.28,
        C.CONST: 0.06, C.INT_ARITH: 0.12, C.INT_DIV: 0.005,
        C.FLOAT_ARITH: 0.25, C.FLOAT_SPECIAL: 0.035, C.CONVERSION: 0.02,
    },
    log_seconds_range=(-3.2, -0.2),
    mix_concentration=220.0,
)

_MIBENCH = SuiteSpec(
    name="mibench",
    benchmarks=(
        "basicmath", "bitcount", "qsort", "susan_corners", "susan_edges",
        "susan_smoothing", "jpeg_encode", "jpeg_decode", "typeset",
        "dijkstra", "patricia", "stringsearch", "blowfish_encrypt",
        "blowfish_decrypt", "rijndael_encrypt", "rijndael_decrypt", "sha",
        "crc32", "fft", "fft_inverse", "adpcm_encode", "adpcm_decode",
        "gsm_encode", "gsm_decode",
    ),
    sizes=("small", "large"),
    mix_prior={
        C.CONTROL: 0.10, C.PARAMETRIC: 0.02, C.VARIABLE: 0.22, C.MEMORY: 0.22,
        C.CONST: 0.08, C.INT_ARITH: 0.26, C.INT_DIV: 0.02,
        C.FLOAT_ARITH: 0.05, C.FLOAT_SPECIAL: 0.01, C.CONVERSION: 0.02,
    },
    log_seconds_range=(-3.5, -0.5),
    mix_concentration=35.0,
)

_CORTEX = SuiteSpec(
    name="cortex",
    benchmarks=(
        "rbm", "sphinx", "srr", "lda", "liblinear",
        "pca", "motion-estimation", "kmeans", "spectral", "svd3",
    ),
    sizes=("small", "medium", "large"),
    mix_prior={
        C.CONTROL: 0.07, C.PARAMETRIC: 0.02, C.VARIABLE: 0.20, C.MEMORY: 0.25,
        C.CONST: 0.06, C.INT_ARITH: 0.16, C.INT_DIV: 0.01,
        C.FLOAT_ARITH: 0.17, C.FLOAT_SPECIAL: 0.03, C.CONVERSION: 0.03,
    },
    log_seconds_range=(-2.0, 0.8),
    mix_concentration=40.0,
)

_SDVBS = SuiteSpec(
    name="sdvbs",
    benchmarks=(
        "disparity", "localization", "mser", "multi_ncut", "sift",
        "stitch", "svm", "texture_synthesis", "tracking",
    ),
    sizes=("sqcif", "qcif", "cif"),
    mix_prior={
        C.CONTROL: 0.08, C.PARAMETRIC: 0.02, C.VARIABLE: 0.21, C.MEMORY: 0.26,
        C.CONST: 0.06, C.INT_ARITH: 0.18, C.INT_DIV: 0.01,
        C.FLOAT_ARITH: 0.13, C.FLOAT_SPECIAL: 0.025, C.CONVERSION: 0.025,
    },
    log_seconds_range=(-2.3, 0.6),
    mix_concentration=45.0,
)

_LIBSODIUM = SuiteSpec(
    name="libsodium",
    benchmarks=(
        "aead_aes256gcm", "aead_chacha20poly1305", "aead_xchacha20poly1305",
        "auth", "auth_hmacsha256", "auth_hmacsha512", "box", "box_seal",
        "generichash", "hash_sha256", "hash_sha512", "kdf", "kx",
        "onetimeauth", "pwhash_argon2i", "pwhash_argon2id",
        "pwhash_scryptsalsa208", "scalarmult", "secretbox", "secretstream",
        "shorthash", "sign_ed25519", "stream_chacha20", "stream_salsa20",
    ),
    sizes=("small", "medium", "large"),
    mix_prior={
        C.CONTROL: 0.05, C.PARAMETRIC: 0.015, C.VARIABLE: 0.20, C.MEMORY: 0.18,
        C.CONST: 0.08, C.INT_ARITH: 0.43, C.INT_DIV: 0.005,
        C.FLOAT_ARITH: 0.008, C.FLOAT_SPECIAL: 0.002, C.CONVERSION: 0.03,
    },
    log_seconds_range=(-3.8, -0.8),
    mix_concentration=150.0,
)

_PYTHON = SuiteSpec(
    name="python",
    benchmarks=(
        "chaos", "deltablue", "fannkuch", "float", "go", "hexiom",
        "nbody", "pidigits", "pyflate", "richards", "scimark",
        "spectral_norm",
    ),
    sizes=("default",),
    mix_prior={
        C.CONTROL: 0.16, C.PARAMETRIC: 0.03, C.VARIABLE: 0.24, C.MEMORY: 0.27,
        C.CONST: 0.07, C.INT_ARITH: 0.15, C.INT_DIV: 0.01,
        C.FLOAT_ARITH: 0.04, C.FLOAT_SPECIAL: 0.01, C.CONVERSION: 0.02,
    },
    log_seconds_range=(-0.8, 1.2),
    mix_concentration=120.0,
)

#: All suites; the workload count matches the paper's 249.
SUITES: tuple[SuiteSpec, ...] = (
    _POLYBENCH,
    _MIBENCH,
    _CORTEX,
    _SDVBS,
    _LIBSODIUM,
    _PYTHON,
)


def suite_names() -> list[str]:
    """Suite identifiers in canonical order (the Fig 7 legend)."""
    return [s.name for s in SUITES]


def enumerate_workload_specs() -> list[tuple[SuiteSpec, str, str]]:
    """All (suite, benchmark, size) triples in deterministic order."""
    specs = []
    for suite in SUITES:
        for bench in suite.benchmarks:
            for size in suite.sizes:
                specs.append((suite, bench, size))
    return specs
