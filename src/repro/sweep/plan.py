"""Sweep planning: expand a grid into a deduplicated stage-task DAG.

Every cell's pipeline is the ancestor closure of its ``stop_after``
stage, keyed by the same content-addressed chaining ``run_pipeline``
uses. Because keys hash (spec components read, stage, upstream keys),
two cells that differ only in a *downstream* knob — same fleet,
different conformal mode; same trained model, different scheduler
policy — share their ancestor keys bit-for-bit. The planner exploits
exactly that: tasks are unique ``(stage, key)`` pairs, so shared
ancestors appear once in the plan no matter how many cells need them.

Planning never touches the store or the filesystem — the plan is pure
arithmetic over spec hashes, cheap enough to rebuild on every run
(which is also how resume works: re-plan, skip committed tasks).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pipeline.stages import PIPELINE_STAGES, pipeline_stage_keys, stage_closure
from ..scenarios.grid import SweepCell, SweepGrid, expand_grid

__all__ = ["SweepTask", "SweepPlan", "build_plan", "task_id"]


def task_id(stage: str, key: str) -> str:
    """Short stable identity of a plan task (``stage/key-prefix``)."""
    return f"{stage}/{key[:24]}"


@dataclass(frozen=True)
class SweepTask:
    """One unique stage execution in the plan DAG."""

    #: Pipeline stage name.
    stage: str
    #: Full content-addressed key (the store key).
    key: str
    #: Task ids of this task's stage inputs (all guaranteed in-plan).
    deps: tuple[str, ...]
    #: Cell ids whose pipelines need this task (≥1; >1 ⇒ deduped).
    cells: tuple[str, ...]
    #: A representative cell id whose spec can compute this stage — any
    #: sharing cell works, since equal keys mean equal computations.
    via_cell: str

    @property
    def id(self) -> str:
        return task_id(self.stage, self.key)


@dataclass(frozen=True)
class SweepPlan:
    """The deduplicated execution plan for one grid."""

    grid: SweepGrid
    cells: tuple[SweepCell, ...]
    #: Unique tasks in a valid topological order (deps precede users).
    tasks: tuple[SweepTask, ...]

    @property
    def n_cell_stages(self) -> int:
        """Stage runs a naive per-cell execution would perform."""
        return sum(len(task.cells) for task in self.tasks)

    @property
    def n_deduped(self) -> int:
        """Stage runs saved by sharing ancestors across cells."""
        return self.n_cell_stages - len(self.tasks)

    def cell_by_id(self, cell_id: str) -> SweepCell:
        for cell in self.cells:
            if cell.cell_id == cell_id:
                return cell
        raise KeyError(f"no cell {cell_id!r} in plan")

    def stage_task_counts(self) -> dict[str, int]:
        """Unique task count per stage (the exactly-once ledger)."""
        counts: dict[str, int] = {}
        for task in self.tasks:
            counts[task.stage] = counts.get(task.stage, 0) + 1
        return counts


def build_plan(grid: SweepGrid) -> SweepPlan:
    """Expand ``grid`` and dedupe the cells' stage closures into a DAG.

    Iterating each cell's stages in pipeline order guarantees a task's
    dependencies are discovered before the task itself, so the plan's
    task tuple is already topologically sorted.
    """
    cells = expand_grid(grid)
    order: list[tuple[str, str]] = []
    deps_by_task: dict[tuple[str, str], tuple[str, ...]] = {}
    cells_by_task: dict[tuple[str, str], list[str]] = {}
    via_by_task: dict[tuple[str, str], str] = {}
    for cell in cells:
        keys = pipeline_stage_keys(cell.spec)
        needed = stage_closure(cell.stop_after)
        for stage in PIPELINE_STAGES:
            if stage.name not in needed:
                continue
            pair = (stage.name, keys[stage.name])
            if pair not in cells_by_task:
                order.append(pair)
                cells_by_task[pair] = []
                via_by_task[pair] = cell.cell_id
                deps_by_task[pair] = tuple(
                    task_id(name, keys[name]) for name in stage.inputs
                )
            cells_by_task[pair].append(cell.cell_id)
    tasks = tuple(
        SweepTask(
            stage=stage,
            key=key,
            deps=deps_by_task[(stage, key)],
            cells=tuple(cells_by_task[(stage, key)]),
            via_cell=via_by_task[(stage, key)],
        )
        for stage, key in order
    )
    return SweepPlan(grid=grid, cells=cells, tasks=tasks)
