"""Sweep execution: a dependency-aware scheduler over a worker pool.

Tasks from a :class:`~repro.sweep.plan.SweepPlan` run as soon as their
stage inputs are committed — across a ``multiprocessing`` pool when
``workers > 1``, inline otherwise. Workers do not share memory: each
one re-opens the store by root path and calls ``run_pipeline`` with
``needed_only=True`` stopped at its task's stage, so the stage's inputs
load from the (already committed) cache and its output commits through
the store's per-artifact lock + atomic-manifest protocol. That protocol
— not the scheduler — is what makes concurrent producers safe; the
scheduler's dependency ordering makes them *efficient* by never
dispatching the same ``(stage, key)`` twice.

Resumability falls out of content addressing: every run starts with a
committed-artifact pre-pass, so a killed sweep's re-run executes only
the missing tasks, and a fully-warm sweep executes zero.

:func:`simulate_makespan` replays a plan's measured per-task durations
through a virtual-time list scheduler — the machine-independent way to
report N-worker speedup from a serial measurement (the same discipline
as the serving bench's open-loop generator: measured service times,
deterministic schedule arithmetic).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from ..pipeline.artifacts import ArtifactStore
from ..pipeline.stages import run_pipeline
from ..scenarios.spec import ScenarioSpec
from .plan import SweepPlan, SweepTask

__all__ = [
    "TaskResult",
    "SweepRunReport",
    "execute_plan",
    "simulate_makespan",
]


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one plan task in one sweep run."""

    task_id: str
    stage: str
    #: True when the committed artifact already existed (no execution).
    cached: bool
    #: Wall-clock seconds spent by the worker (0.0 for cached tasks).
    duration: float
    #: Cells sharing this task (from the plan).
    cells: tuple[str, ...]


@dataclass(frozen=True)
class SweepRunReport:
    """Everything one sweep run did, task by task."""

    results: tuple[TaskResult, ...]
    workers: int

    @property
    def executed(self) -> tuple[TaskResult, ...]:
        return tuple(r for r in self.results if not r.cached)

    @property
    def cached(self) -> tuple[TaskResult, ...]:
        return tuple(r for r in self.results if r.cached)

    def executed_stage_counts(self) -> dict[str, int]:
        """Executed task count per stage (the exactly-once ledger)."""
        counts: dict[str, int] = {}
        for result in self.executed:
            counts[result.stage] = counts.get(result.stage, 0) + 1
        return counts

    def durations(self) -> dict[str, float]:
        """Per-task measured durations (input to the makespan model)."""
        return {r.task_id: r.duration for r in self.results}


def _run_task(store_root: str, spec: ScenarioSpec, stage: str) -> float:
    """Worker entry: produce one stage's artifact; return its duration.

    Module-level (picklable) for spawn-based pools. ``needed_only``
    restricts the pipeline to the stage's ancestor closure; the
    scheduler only dispatches once the inputs are committed, so they
    load from cache and only ``stage`` itself computes.
    """
    # Durations are observability metadata for the report/makespan
    # model, never part of a cached artifact payload.
    start = time.perf_counter()  # repro-lint: disable=RPR004
    run_pipeline(spec, store=store_root, stop_after=stage, needed_only=True)
    return time.perf_counter() - start  # repro-lint: disable=RPR004


def execute_plan(
    plan: SweepPlan,
    store: ArtifactStore | str | Path,
    workers: int = 1,
    start_method: str | None = None,
    echo: Callable[[str], None] | None = None,
) -> SweepRunReport:
    """Run every missing task in ``plan``; return the full ledger.

    ``workers > 1`` uses a ``multiprocessing`` pool (``start_method``
    of ``fork``/``spawn``/``forkserver``, platform default when
    ``None``); a task is submitted the moment its last dependency
    commits. ``workers <= 1`` runs inline in plan (topological) order.
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    say = echo or (lambda _line: None)

    results: dict[str, TaskResult] = {}
    done: set[str] = set()
    for task in plan.tasks:
        if store.has(task.stage, task.key):
            results[task.id] = TaskResult(
                task_id=task.id,
                stage=task.stage,
                cached=True,
                duration=0.0,
                cells=task.cells,
            )
            done.add(task.id)
    pending = [t for t in plan.tasks if t.id not in done]
    if pending:
        say(
            f"{len(done)} task(s) already committed, "
            f"{len(pending)} to run on {workers} worker(s)"
        )

    specs = {cell.cell_id: cell.spec for cell in plan.cells}

    def record(task: SweepTask, duration: float) -> None:
        results[task.id] = TaskResult(
            task_id=task.id,
            stage=task.stage,
            cached=False,
            duration=duration,
            cells=task.cells,
        )
        done.add(task.id)
        say(
            f"run {task.id} ({len(task.cells)} cell(s), {duration:.2f}s)"
        )

    if workers == 1:
        for task in pending:
            record(task, _run_task(str(store.root), specs[task.via_cell], task.stage))
    else:
        dependents: dict[str, list[SweepTask]] = {}
        missing: dict[str, int] = {}
        for task in pending:
            open_deps = [d for d in task.deps if d not in done]
            missing[task.id] = len(open_deps)
            for dep in open_deps:
                dependents.setdefault(dep, []).append(task)
        ready = [t for t in pending if missing[t.id] == 0]
        context = multiprocessing.get_context(start_method)
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            in_flight: dict[Future[float], SweepTask] = {}
            while ready or in_flight:
                for task in ready:
                    future = pool.submit(
                        _run_task,
                        str(store.root),
                        specs[task.via_cell],
                        task.stage,
                    )
                    in_flight[future] = task
                ready = []
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in finished:
                    task = in_flight.pop(future)
                    record(task, future.result())
                    for dependent in dependents.get(task.id, ()):
                        missing[dependent.id] -= 1
                        if missing[dependent.id] == 0:
                            ready.append(dependent)

    ordered = tuple(results[t.id] for t in plan.tasks)
    return SweepRunReport(results=ordered, workers=workers)


def simulate_makespan(
    plan: SweepPlan,
    durations: Mapping[str, float],
    workers: int,
) -> float:
    """Virtual-time makespan of ``plan`` on ``workers`` identical workers.

    Deterministic list scheduling over the plan DAG: each step assigns
    the ready task with the earliest ready-time (plan order breaking
    ties) to the earliest-free worker. With measured serial durations
    as input this yields the machine-independent N-worker speedup the
    throughput bench commits — dependency chains (collect → scale →
    train) bound it exactly the way they bound a real pool.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    ready_time: dict[str, float] = {}
    finish: dict[str, float] = {}
    remaining = {task.id: len(task.deps) for task in plan.tasks}
    tasks_by_id = {task.id: task for task in plan.tasks}
    dependents: dict[str, list[str]] = {}
    for task in plan.tasks:
        for dep in task.deps:
            dependents.setdefault(dep, []).append(task.id)
    ready = [t.id for t in plan.tasks if remaining[t.id] == 0]
    for tid in ready:
        ready_time[tid] = 0.0
    worker_free = [0.0] * workers
    while ready:
        ready.sort(key=lambda tid: ready_time[tid])
        tid = ready.pop(0)
        worker = min(range(workers), key=worker_free.__getitem__)
        start = max(worker_free[worker], ready_time[tid])
        end = start + float(durations.get(tid, 0.0))
        worker_free[worker] = end
        finish[tid] = end
        for dep_id in dependents.get(tid, ()):
            remaining[dep_id] -= 1
            if remaining[dep_id] == 0:
                ready_time[dep_id] = max(
                    finish[d] for d in tasks_by_id[dep_id].deps
                )
                ready.append(dep_id)
    return max(finish.values(), default=0.0)
