"""Sweep aggregation: per-cell metrics → replicate-aware tables.

Cells differing only on the seed axis are replicates of one condition
(scenario × conformal mode × margin × policy). The aggregator loads each
cell's committed metrics straight from the store — no pipeline objects
are rebuilt — and folds replicates into mean ± 2·stderr per metric, the
same error-bar definition every experiment harness uses
(:func:`repro.eval.two_se`).

Two artifact sources feed the flat metric dict:

* the ``evaluate`` stage's batch test metrics (MAPE, coverage@ε,
  margin@ε) — the default for ``stop_after="evaluate"`` sweeps;
* the ``update`` stage's lifecycle ticks, summarized as drift-phase
  coverage (``drift_coverage`` / ``drift_coverage_static`` over the
  final — most drifted — phase, plus the reset count) — what a
  ``stop_after="recalibrate"`` drift sweep compares across margin modes.

A cell contributes whichever of the two is committed; a cell with
neither raises (aggregate after the sweep ran, not instead of it).
"""

from __future__ import annotations

import json
from pathlib import Path

from dataclasses import dataclass

from ..eval.significance import two_se
from ..pipeline.artifacts import ArtifactStore
from ..pipeline.stages import pipeline_stage_keys
from ..scenarios.grid import SweepCell

__all__ = ["SweepGroup", "aggregate_sweep", "cell_metrics"]


def _lifecycle_metrics(
    payload: dict, phases: tuple[float, ...] = ()
) -> dict[str, float]:
    """Coverage summary of an ``update`` artifact's lifecycle ticks.

    ``drift_coverage`` / ``drift_coverage_static`` summarize the final
    (most drifted) phase; when the spec's phase multipliers are known,
    every drifted phase additionally gets a ``drift_coverage@<mult>x``
    key, so one sweep over a multi-phase drift trace compares margin
    modes at *every* drift magnitude.
    """
    ticks = payload.get("ticks") or []
    if not ticks:
        return {}

    def _phase_mean(rows: list[dict], key: str) -> float:
        events = float(sum(t["events"] for t in rows))
        return sum(t[key] * t["events"] for t in rows) / events

    last_phase = max(int(t["phase"]) for t in ticks)
    final = [t for t in ticks if int(t["phase"]) == last_phase]
    flat = {
        "drift_coverage": _phase_mean(final, "coverage_adaptive"),
        "drift_coverage_static": _phase_mean(final, "coverage_static"),
        "drift_resets": float(sum(1 for t in ticks if t["reset"])),
    }
    for phase, multiplier in enumerate(phases):
        if phase == 0:
            continue  # the pre-drift regime is not a drift magnitude
        rows = [t for t in ticks if int(t["phase"]) == phase]
        if rows:
            flat[f"drift_coverage@{multiplier:g}x"] = _phase_mean(
                rows, "coverage_adaptive"
            )
    return flat


def cell_metrics(
    cell: SweepCell, store: ArtifactStore | str | Path
) -> dict[str, float]:
    """Flat numeric metrics of one cell's committed artifacts.

    Keys from ``evaluate`` (when committed): ``mape_isolation`` /
    ``mape_interference`` plus ``coverage@ε`` / ``margin@ε`` per
    calibrated ε. Keys from ``update`` (when committed):
    ``drift_coverage`` / ``drift_coverage_static`` (event-weighted mean
    over the final drift phase) and ``drift_resets``. Raises ``KeyError``
    when neither stage has been committed (the sweep did not run, or
    stopped earlier).
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    keys = pipeline_stage_keys(cell.spec)
    flat: dict[str, float] = {}
    found = False
    if store.has("evaluate", keys["evaluate"]):
        payload = json.loads(
            (store.read_dir("evaluate", keys["evaluate"]) / "metrics.json")
            .read_text()
        )
        for name in ("mape_isolation", "mape_interference"):
            if payload.get(name) is not None:
                flat[name] = float(payload[name])
        for eps, entry in payload.get("epsilons", {}).items():
            label = f"{float(eps):g}"
            flat[f"coverage@{label}"] = float(entry["coverage"])
            flat[f"margin@{label}"] = float(entry["margin"])
        found = True
    if "update" in keys and store.has("update", keys["update"]):
        payload = json.loads(
            (store.read_dir("update", keys["update"]) / "lifecycle.json")
            .read_text()
        )
        flat.update(_lifecycle_metrics(payload, cell.spec.drift.phases))
        found = True
    if not found:
        raise KeyError(
            f"cell {cell.cell_id!r} has no committed evaluate or update "
            "artifact; run the sweep first"
        )
    return flat


@dataclass(frozen=True)
class SweepGroup:
    """One aggregated condition: all seeds of (scenario, mode, margin, policy)."""

    scenario: str
    strategy: str | None
    margin: str | None
    policy: str | None
    #: Replicate count (cells folded into this group).
    n: int
    #: ``metric -> (mean, 2·stderr | None)`` across replicates.
    metrics: dict[str, tuple[float, float | None]]

    @property
    def label(self) -> str:
        parts = [self.scenario]
        if self.strategy is not None:
            parts.append(self.strategy)
        if self.margin is not None:
            parts.append(self.margin)
        if self.policy is not None:
            parts.append(self.policy)
        return "+".join(parts)


def aggregate_sweep(
    cells: tuple[SweepCell, ...] | list[SweepCell],
    store: ArtifactStore | str | Path,
) -> list[SweepGroup]:
    """Fold the cells' committed metrics into per-condition groups.

    Group order follows first appearance in ``cells`` (i.e. grid
    expansion order); metric order within a group follows the first
    replicate's metric order. Cells with no committed metrics raise —
    aggregate after the sweep ran, not instead of it.
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    # Condition key: (scenario, strategy, margin, policy).
    order: list[tuple] = []
    by_condition: dict[tuple, list[dict[str, float]]] = {}
    for cell in cells:
        condition: tuple = (
            cell.scenario, cell.strategy, cell.margin, cell.policy
        )
        if condition not in by_condition:
            order.append(condition)
            by_condition[condition] = []
        by_condition[condition].append(cell_metrics(cell, store))
    groups: list[SweepGroup] = []
    for condition in order:
        replicates = by_condition[condition]
        metric_names: list[str] = []
        for metrics in replicates:
            for name in metrics:
                if name not in metric_names:
                    metric_names.append(name)
        folded: dict[str, tuple[float, float | None]] = {}
        for name in metric_names:
            values = [m[name] for m in replicates if name in m]
            mean = sum(values) / len(values)
            folded[name] = (mean, two_se(values))
        scenario, strategy, margin, policy = condition
        groups.append(
            SweepGroup(
                scenario=scenario,
                strategy=strategy,
                margin=margin,
                policy=policy,
                n=len(replicates),
                metrics=folded,
            )
        )
    return groups
