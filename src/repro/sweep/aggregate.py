"""Sweep aggregation: per-cell metrics → replicate-aware tables.

Cells differing only on the seed axis are replicates of one condition
(scenario × conformal mode × policy). The aggregator loads each cell's
committed ``evaluate`` metrics straight from the store — no pipeline
objects are rebuilt — and folds replicates into mean ± 2·stderr per
metric, the same error-bar definition every experiment harness uses
(:func:`repro.eval.two_se`).
"""

from __future__ import annotations

import json
from pathlib import Path

from dataclasses import dataclass

from ..eval.significance import two_se
from ..pipeline.artifacts import ArtifactStore
from ..pipeline.stages import pipeline_stage_keys
from ..scenarios.grid import SweepCell

__all__ = ["SweepGroup", "aggregate_sweep", "cell_metrics"]


def cell_metrics(
    cell: SweepCell, store: ArtifactStore | str | Path
) -> dict[str, float]:
    """Flat numeric metrics of one cell's committed ``evaluate`` artifact.

    Keys: ``mape_isolation`` / ``mape_interference`` plus
    ``coverage@ε`` / ``margin@ε`` per calibrated ε. Raises ``KeyError``
    when the cell's evaluate stage has not been committed (the sweep
    did not run, or stopped earlier).
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    key = pipeline_stage_keys(cell.spec)["evaluate"]
    payload = json.loads(
        (store.read_dir("evaluate", key) / "metrics.json").read_text()
    )
    flat: dict[str, float] = {}
    for name in ("mape_isolation", "mape_interference"):
        if payload.get(name) is not None:
            flat[name] = float(payload[name])
    for eps, entry in payload.get("epsilons", {}).items():
        label = f"{float(eps):g}"
        flat[f"coverage@{label}"] = float(entry["coverage"])
        flat[f"margin@{label}"] = float(entry["margin"])
    return flat


@dataclass(frozen=True)
class SweepGroup:
    """One aggregated condition: all seeds of (scenario, mode, policy)."""

    scenario: str
    strategy: str | None
    policy: str | None
    #: Replicate count (cells folded into this group).
    n: int
    #: ``metric -> (mean, 2·stderr | None)`` across replicates.
    metrics: dict[str, tuple[float, float | None]]

    @property
    def label(self) -> str:
        parts = [self.scenario]
        if self.strategy is not None:
            parts.append(self.strategy)
        if self.policy is not None:
            parts.append(self.policy)
        return "+".join(parts)


def aggregate_sweep(
    cells: tuple[SweepCell, ...] | list[SweepCell],
    store: ArtifactStore | str | Path,
) -> list[SweepGroup]:
    """Fold the cells' committed metrics into per-condition groups.

    Group order follows first appearance in ``cells`` (i.e. grid
    expansion order); metric order within a group follows the first
    replicate's metric order. Cells whose evaluate artifact is missing
    raise — aggregate after the sweep ran, not instead of it.
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    order: list[tuple[str, str | None, str | None]] = []
    by_condition: dict[
        tuple[str, str | None, str | None], list[dict[str, float]]
    ] = {}
    for cell in cells:
        condition = (cell.scenario, cell.strategy, cell.policy)
        if condition not in by_condition:
            order.append(condition)
            by_condition[condition] = []
        by_condition[condition].append(cell_metrics(cell, store))
    groups: list[SweepGroup] = []
    for condition in order:
        replicates = by_condition[condition]
        metric_names: list[str] = []
        for metrics in replicates:
            for name in metrics:
                if name not in metric_names:
                    metric_names.append(name)
        folded: dict[str, tuple[float, float | None]] = {}
        for name in metric_names:
            values = [m[name] for m in replicates if name in m]
            mean = sum(values) / len(values)
            folded[name] = (mean, two_se(values))
        scenario, strategy, policy = condition
        groups.append(
            SweepGroup(
                scenario=scenario,
                strategy=strategy,
                policy=policy,
                n=len(replicates),
                metrics=folded,
            )
        )
    return groups
