"""Parallel sweep orchestration over the content-addressed store.

The fan-out layer ROADMAP calls "the refactor that unlocks everything
above": a declarative grid (:class:`repro.scenarios.SweepGrid`) expands
into cells, the planner (:mod:`.plan`) dedupes their stage closures into
a DAG of unique ``(stage, key)`` tasks — cells sharing a stage-key
prefix schedule the common ancestors exactly once — and the runner
(:mod:`.runner`) executes independent tasks across a multiprocessing
worker pool, relying on the store's per-artifact lock + atomic-commit
protocol for crash- and race-safety. The aggregator (:mod:`.aggregate`)
folds per-cell metrics into replicate-aware mean ± 2se tables.
"""

from .aggregate import SweepGroup, aggregate_sweep, cell_metrics
from .plan import SweepPlan, SweepTask, build_plan
from .runner import (
    SweepRunReport,
    TaskResult,
    execute_plan,
    simulate_makespan,
)

__all__ = [
    "SweepTask",
    "SweepPlan",
    "build_plan",
    "TaskResult",
    "SweepRunReport",
    "execute_plan",
    "simulate_makespan",
    "SweepGroup",
    "aggregate_sweep",
    "cell_metrics",
]
