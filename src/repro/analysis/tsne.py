"""Exact t-SNE (van der Maaten & Hinton, 2008) in NumPy.

Used for the qualitative embedding visualizations of Fig 7 and Fig 12a–c.
scikit-learn is unavailable offline, so this is a from-scratch exact
implementation: perplexity calibration by per-point binary search over
Gaussian bandwidths, symmetrized affinities, Student-t low-dimensional
kernel, gradient descent with momentum and early exaggeration.

The populations here are small (≤ 250 points), so the O(n²) exact
gradient is more than fast enough.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tsne", "pairwise_sq_distances"]


def pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance matrix, zero diagonal."""
    sq = np.sum(x**2, axis=1)
    d = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d, 0.0)
    return np.maximum(d, 0.0)


def _conditional_probabilities(
    distances: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 60
) -> np.ndarray:
    """Row-stochastic affinities with per-row entropy = log(perplexity)."""
    n = distances.shape[0]
    target = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        row = np.delete(distances[i], i)
        lo, hi = 1e-20, 1e20
        beta = 1.0
        for _ in range(max_iter):
            logits = -row * beta
            logits -= logits.max()
            expd = np.exp(logits)
            sum_expd = expd.sum()
            probs = expd / sum_expd
            # Shannon entropy of the conditional distribution.
            entropy = -np.sum(probs * np.log(np.maximum(probs, 1e-300)))
            if abs(entropy - target) < tol:
                break
            if entropy > target:
                lo = beta
                beta = beta * 2.0 if hi >= 1e20 else 0.5 * (beta + hi)
            else:
                hi = beta
                beta = beta / 2.0 if lo <= 1e-20 else 0.5 * (beta + lo)
        p[i, np.arange(n) != i] = probs
    return p


def tsne(
    x: np.ndarray,
    n_components: int = 2,
    perplexity: float = 30.0,
    n_iter: int = 500,
    learning_rate: float | None = None,
    early_exaggeration: float = 12.0,
    exaggeration_iter: int = 120,
    momentum: float = 0.8,
    seed: int = 0,
) -> np.ndarray:
    """Embed ``x`` (n, d) into ``n_components`` dimensions.

    Deterministic given ``seed``. Perplexity is clipped to (n−1)/3 as
    usual for small populations. ``learning_rate=None`` uses the
    "auto" heuristic ``max(n / early_exaggeration, 10)`` (Belkina et al.,
    2019) — fixed large rates diverge on small populations.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 4:
        raise ValueError("t-SNE needs at least 4 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    if learning_rate is None:
        learning_rate = max(n / early_exaggeration, 10.0)

    cond = _conditional_probabilities(pairwise_sq_distances(x), perplexity)
    p = (cond + cond.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    rng = np.random.default_rng(seed)
    y = rng.normal(0.0, 1e-4, size=(n, n_components))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)

    p_run = p * early_exaggeration
    for it in range(n_iter):
        if it == exaggeration_iter:
            p_run = p
        dist = pairwise_sq_distances(y)
        inv = 1.0 / (1.0 + dist)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / inv.sum(), 1e-12)

        # Exact gradient: 4 Σ_j (p_ij − q_ij)(y_i − y_j)/(1 + |y_i−y_j|²)
        coef = (p_run - q) * inv
        grad = 4.0 * ((np.diag(coef.sum(axis=1)) - coef) @ y)

        # Delta-bar-delta gains, as in the reference implementation.
        gains = np.where(np.sign(grad) != np.sign(velocity), gains + 0.2, gains * 0.8)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0, keepdims=True)
    return y
