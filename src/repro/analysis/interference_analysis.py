"""Interference-matrix analysis (Fig 12d).

The spectral norm ‖F_j‖₂ of Pitot's learned per-platform interference
matrix bounds the worst-case pairwise interference on platform j (Eq. 15).
The paper validates the interference model by showing ‖F_j‖₂ correlates
positively with each platform's *measured* mean interference slowdown;
this module computes both sides of that plot.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..cluster.dataset import RuntimeDataset

__all__ = [
    "interference_spectral_norms",
    "measured_mean_interference",
    "norm_vs_interference",
]


def interference_spectral_norms(interference_matrices: np.ndarray) -> np.ndarray:
    """‖F_j‖₂ per platform from a ``(Np, r, r)`` stack."""
    return np.linalg.norm(interference_matrices, ord=2, axis=(1, 2))


def measured_mean_interference(dataset: RuntimeDataset) -> np.ndarray:
    """Mean log10 interference slowdown observed per platform.

    Slowdown of each interference observation is measured against the
    platform/workload pair's isolation mean (as in Fig 1); platforms with
    no usable interference observations get ``NaN``.
    """
    iso_mean = dataset.isolation_mean_log10()
    mask = dataset.interference_mask()
    base = iso_mean[dataset.w_idx[mask], dataset.p_idx[mask]]
    valid = ~np.isnan(base)
    slowdown = np.log10(dataset.runtime[mask][valid]) - base[valid]
    plats = dataset.p_idx[mask][valid]

    sums = np.bincount(plats, weights=slowdown, minlength=dataset.n_platforms)
    counts = np.bincount(plats, minlength=dataset.n_platforms)
    with np.errstate(invalid="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


def norm_vs_interference(
    interference_matrices: np.ndarray,
    dataset: RuntimeDataset,
) -> dict[str, float | np.ndarray]:
    """The Fig 12d scatter: learned ‖F_j‖₂ vs measured interference.

    Returns both series plus their Pearson and Spearman correlations over
    platforms with valid measurements. The paper's claim is a positive
    correlation.
    """
    norms = interference_spectral_norms(interference_matrices)
    measured = measured_mean_interference(dataset)
    valid = ~np.isnan(measured)
    if valid.sum() < 3:
        raise ValueError("need at least 3 platforms with interference data")
    pearson = float(np.corrcoef(norms[valid], measured[valid])[0, 1])
    spearman = float(stats.spearmanr(norms[valid], measured[valid]).statistic)
    return {
        "norms": norms,
        "measured": measured,
        "pearson": pearson,
        "spearman": spearman,
        "n_platforms": int(valid.sum()),
    }
