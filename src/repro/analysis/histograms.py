"""Interference slowdown histograms (Fig 1).

Fig 1 shows log-density histograms of the interference slowdown — measured
runtime over the pair's isolation mean — separately for 2/3/4-way
interference, with tails reaching ~20×.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.dataset import RuntimeDataset

__all__ = ["SlowdownHistogram", "interference_slowdowns", "slowdown_histograms"]


@dataclass
class SlowdownHistogram:
    """One degree's histogram over log-spaced slowdown bins."""

    degree: int
    bin_edges: np.ndarray
    counts: np.ndarray
    n: int
    median: float
    p90: float
    p99: float
    max: float

    def log_density(self) -> np.ndarray:
        """log10(1 + count) per bin — the y-axis of Fig 1."""
        return np.log10(1.0 + self.counts)


def interference_slowdowns(
    dataset: RuntimeDataset, degree: int
) -> np.ndarray:
    """Slowdown samples (runtime / isolation mean) for one degree."""
    iso_mean = dataset.isolation_mean_log10()
    mask = dataset.degree_mask(degree)
    base = iso_mean[dataset.w_idx[mask], dataset.p_idx[mask]]
    valid = ~np.isnan(base)
    return 10.0 ** (np.log10(dataset.runtime[mask][valid]) - base[valid])


def slowdown_histograms(
    dataset: RuntimeDataset,
    degrees: tuple[int, ...] = (2, 3, 4),
    max_slowdown: float = 30.0,
    n_bins: int = 40,
) -> list[SlowdownHistogram]:
    """Compute Fig 1's per-degree histograms on log-spaced bins."""
    edges = np.logspace(np.log10(0.8), np.log10(max_slowdown), n_bins + 1)
    out = []
    for degree in degrees:
        slow = interference_slowdowns(dataset, degree)
        counts, _ = np.histogram(slow, bins=edges)
        out.append(
            SlowdownHistogram(
                degree=degree,
                bin_edges=edges,
                counts=counts,
                n=len(slow),
                median=float(np.median(slow)) if len(slow) else float("nan"),
                p90=float(np.percentile(slow, 90)) if len(slow) else float("nan"),
                p99=float(np.percentile(slow, 99)) if len(slow) else float("nan"),
                max=float(slow.max()) if len(slow) else float("nan"),
            )
        )
    return out
