"""Embedding-based anomaly detection (the Sec 5.4 downstream task).

The paper notes the learned embeddings "could be used for downstream
tasks such as clustering or anomaly detection". This module implements
the anomaly half: a kNN-distance outlier score over workload or platform
embeddings, flagging entities whose performance behaviour is unlike any
of their peers — e.g. a platform with failing thermals, or a mislabeled
workload whose binary changed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tsne import pairwise_sq_distances

__all__ = ["AnomalyReport", "knn_outlier_scores", "detect_anomalies"]


@dataclass(frozen=True)
class AnomalyReport:
    """Scores plus the flagged indices for one entity population."""

    scores: np.ndarray
    threshold: float
    anomalies: np.ndarray  # indices, descending score


def knn_outlier_scores(embeddings: np.ndarray, k: int = 5) -> np.ndarray:
    """Mean distance to the k nearest neighbors, per entity.

    Scale-normalized by the population median so scores are comparable
    across embedding spaces: a score of 3 means "3x the typical
    neighborhood radius".
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    n = embeddings.shape[0]
    if n <= k:
        raise ValueError(f"need more than k={k} entities, got {n}")
    dist = np.sqrt(pairwise_sq_distances(embeddings))
    np.fill_diagonal(dist, np.inf)
    knn = np.sort(dist, axis=1)[:, :k].mean(axis=1)
    scale = max(float(np.median(knn)), 1e-12)
    return knn / scale


def detect_anomalies(
    embeddings: np.ndarray,
    k: int = 5,
    threshold: float = 2.5,
) -> AnomalyReport:
    """Flag entities whose normalized kNN radius exceeds ``threshold``."""
    scores = knn_outlier_scores(embeddings, k=k)
    flagged = np.flatnonzero(scores > threshold)
    order = flagged[np.argsort(-scores[flagged])]
    return AnomalyReport(scores=scores, threshold=threshold, anomalies=order)
