"""Interpretability & dataset analysis: t-SNE (Figs 7/12a-c), cluster
quantification, interference-matrix norms (Fig 12d), slowdown histograms
(Fig 1)."""

from .anomaly import AnomalyReport, detect_anomalies, knn_outlier_scores
from .embeddings import cluster_report, knn_label_agreement, label_centroid_spread
from .histograms import SlowdownHistogram, interference_slowdowns, slowdown_histograms
from .interference_analysis import (
    interference_spectral_norms,
    measured_mean_interference,
    norm_vs_interference,
)
from .tsne import pairwise_sq_distances, tsne

__all__ = [
    "tsne",
    "AnomalyReport",
    "detect_anomalies",
    "knn_outlier_scores",
    "pairwise_sq_distances",
    "knn_label_agreement",
    "label_centroid_spread",
    "cluster_report",
    "SlowdownHistogram",
    "interference_slowdowns",
    "slowdown_histograms",
    "interference_spectral_norms",
    "measured_mean_interference",
    "norm_vs_interference",
]
