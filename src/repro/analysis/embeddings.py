"""Embedding interpretability analysis (Sec 5.4 / App D.4).

The paper shows t-SNE plots of workload embeddings colored by benchmark
suite (Fig 7) and platform embeddings colored by runtime / µarch
(Fig 12b–c). Plots cannot be rendered in this harness, so cluster
structure is additionally *quantified*: a k-nearest-neighbor label
agreement score (how often a point's embedding neighbors share its label)
that exceeds the shuffled-label baseline when the claimed clusters exist.
"""

from __future__ import annotations

import numpy as np

from .tsne import pairwise_sq_distances

__all__ = ["knn_label_agreement", "cluster_report", "label_centroid_spread"]


def knn_label_agreement(
    embeddings: np.ndarray,
    labels: np.ndarray,
    k: int = 5,
) -> float:
    """Mean fraction of each point's k nearest neighbors sharing its label.

    1.0 = perfectly clustered by label; the chance level is each label's
    prevalence (≈ max label share for a majority label).
    """
    labels = np.asarray(labels)
    n = len(labels)
    if n <= k:
        raise ValueError(f"need more than k={k} points, got {n}")
    dist = pairwise_sq_distances(np.asarray(embeddings, dtype=np.float64))
    np.fill_diagonal(dist, np.inf)
    neighbor_idx = np.argpartition(dist, k, axis=1)[:, :k]
    agreement = labels[neighbor_idx] == labels[:, None]
    return float(agreement.mean())


def label_centroid_spread(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Between-centroid variance share (0..1, higher = better separated)."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    overall = embeddings.mean(axis=0)
    total = float(np.sum((embeddings - overall) ** 2))
    if total <= 0:
        return 0.0
    between = 0.0
    for label in np.unique(labels):
        members = embeddings[labels == label]
        between += len(members) * float(np.sum((members.mean(axis=0) - overall) ** 2))
    return between / total


def cluster_report(
    embeddings: np.ndarray,
    labels: np.ndarray,
    k: int = 5,
    n_shuffles: int = 20,
    seed: int = 0,
) -> dict[str, float]:
    """Agreement score vs a shuffled-label null distribution.

    Returns the observed kNN agreement, the null mean, and the gap in
    null standard deviations ("sigma") — the quantitative stand-in for
    "we can observe a clear clustering" (Fig 7).
    """
    labels = np.asarray(labels)
    observed = knn_label_agreement(embeddings, labels, k=k)
    rng = np.random.default_rng(seed)
    null = np.array(
        [
            knn_label_agreement(embeddings, rng.permutation(labels), k=k)
            for _ in range(n_shuffles)
        ]
    )
    null_std = max(float(null.std()), 1e-9)
    return {
        "agreement": observed,
        "null_mean": float(null.mean()),
        "null_std": null_std,
        "sigma": (observed - float(null.mean())) / null_std,
    }
