"""Train/validation/calibration/test splitting (Sec 5.1).

The paper evaluates at training fractions 10%…90% with 5 replicates, each
replicate drawing an independent train/test partition; within the training
set, 80% trains the model and 20% is held out for validation *and*
conformal calibration.

Two paper assumptions are enforced (Sec 3.1): every workload and every
platform must be observed at least once in the training portion — rows are
promoted into train when a replicate would otherwise leave an entity
unseen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import RuntimeDataset

__all__ = ["DataSplit", "make_split", "replicate_splits"]


@dataclass
class DataSplit:
    """One replicate's partition of a dataset.

    ``train`` is the 80% used for gradient descent; ``calibration`` is the
    20% validation/calibration hold-out; ``test`` is everything outside
    the training fraction.
    """

    train: RuntimeDataset
    calibration: RuntimeDataset
    test: RuntimeDataset
    train_fraction: float
    seed: int

    @property
    def n_train(self) -> int:
        return self.train.n_observations

    @property
    def n_calibration(self) -> int:
        return self.calibration.n_observations

    @property
    def n_test(self) -> int:
        return self.test.n_observations


def _ensure_entity_coverage(
    dataset: RuntimeDataset,
    train_rows: np.ndarray,
    test_rows: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Move rows from test → train so every entity appears in training.

    Implements the "each workload/platform is observed at least once"
    assumption; predicting a never-observed entity is out of scope for
    matrix completion (Sec 3.1).
    """
    train_set = set(train_rows.tolist())
    test_list = test_rows.tolist()

    for entity_ids, column in (
        (np.unique(dataset.w_idx), dataset.w_idx),
        (np.unique(dataset.p_idx), dataset.p_idx),
    ):
        covered = set(np.unique(column[train_rows]).tolist()) if len(train_rows) else set()
        missing = [e for e in entity_ids if e not in covered]
        for entity in missing:
            candidates = [r for r in test_list if column[r] == entity]
            if not candidates:
                continue
            chosen = candidates[int(rng.integers(len(candidates)))]
            test_list.remove(chosen)
            train_set.add(chosen)
    return np.array(sorted(train_set), dtype=int), np.array(test_list, dtype=int)


def make_split(
    dataset: RuntimeDataset,
    train_fraction: float,
    seed: int,
    calibration_fraction: float = 0.2,
) -> DataSplit:
    """Draw one replicate split.

    Parameters
    ----------
    dataset:
        The full collected dataset.
    train_fraction:
        Fraction of all observations available for training+calibration
        (the x-axis of Figs 4/6).
    seed:
        Replicate seed; different seeds give independent partitions.
    calibration_fraction:
        Portion of the training fraction held out for validation and
        conformal calibration (paper: 20%).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0,1), got {train_fraction}")
    rng = np.random.default_rng(seed)
    n = dataset.n_observations
    perm = rng.permutation(n)
    n_train_total = int(round(train_fraction * n))
    train_total, test_rows = perm[:n_train_total], perm[n_train_total:]
    train_total, test_rows = _ensure_entity_coverage(
        dataset, train_total, test_rows, rng
    )

    # Hold out calibration from the (possibly augmented) training rows.
    perm2 = rng.permutation(len(train_total))
    n_cal = int(round(calibration_fraction * len(train_total)))
    cal_rows = train_total[perm2[:n_cal]]
    train_rows = train_total[perm2[n_cal:]]
    # Entity coverage must also hold for the actual gradient-descent rows.
    train_rows, cal_rows = _ensure_entity_coverage(
        dataset, train_rows, cal_rows, rng
    )

    return DataSplit(
        train=dataset.subset(train_rows),
        calibration=dataset.subset(cal_rows),
        test=dataset.subset(test_rows),
        train_fraction=train_fraction,
        seed=seed,
    )


def replicate_splits(
    dataset: RuntimeDataset,
    train_fraction: float,
    n_replicates: int,
    base_seed: int = 0,
) -> list[DataSplit]:
    """The paper's replicate protocol: independent splits per replicate."""
    return [
        make_split(dataset, train_fraction, seed=base_seed + 1000 * r)
        for r in range(n_replicates)
    ]
