"""Train/validation/calibration/test splitting (Sec 5.1).

The paper evaluates at training fractions 10%…90% with 5 replicates, each
replicate drawing an independent train/test partition; within the training
set, 80% trains the model and 20% is held out for validation *and*
conformal calibration.

Two paper assumptions are enforced (Sec 3.1): every workload and every
platform must be observed at least once in the training portion — rows are
promoted into train when a replicate would otherwise leave an entity
unseen.

Beyond the paper's random protocol, :func:`make_cold_workload_split`
implements the unseen-entity regime (the ``cold-start-workloads``
scenario): a workload subset is held out entirely, so every observation
touching it — as target *or* interferer — is test-only and the model must
generalize from side-information features alone.

Every split records the row-index arrays it was built from
(``train_rows`` / ``calibration_rows`` / ``test_rows``), so splits can be
persisted, compared for determinism, and replayed by the pipeline's
artifact cache without re-randomizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dataset import RuntimeDataset

__all__ = [
    "DataSplit",
    "make_split",
    "make_cold_workload_split",
    "replicate_splits",
]


@dataclass
class DataSplit:
    """One replicate's partition of a dataset.

    ``train`` is the 80% used for gradient descent; ``calibration`` is the
    20% validation/calibration hold-out; ``test`` is everything outside
    the training fraction. The ``*_rows`` arrays are the source-dataset
    row indices backing each part (sorted order matches the subset
    construction).
    """

    train: RuntimeDataset
    calibration: RuntimeDataset
    test: RuntimeDataset
    train_fraction: float
    seed: int
    train_rows: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    calibration_rows: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=int)
    )
    test_rows: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def n_train(self) -> int:
        return self.train.n_observations

    @property
    def n_calibration(self) -> int:
        return self.calibration.n_observations

    @property
    def n_test(self) -> int:
        return self.test.n_observations

    @classmethod
    def from_rows(
        cls,
        dataset: RuntimeDataset,
        train_rows: np.ndarray,
        calibration_rows: np.ndarray,
        test_rows: np.ndarray,
        train_fraction: float,
        seed: int,
    ) -> "DataSplit":
        """Materialize a split from explicit row-index arrays.

        The replay path: a split persisted as three index arrays (the
        pipeline's ``scale`` artifact) reconstructs bit-identically.
        """
        train_rows = np.asarray(train_rows, dtype=int)
        calibration_rows = np.asarray(calibration_rows, dtype=int)
        test_rows = np.asarray(test_rows, dtype=int)
        return cls(
            train=dataset.subset(train_rows),
            calibration=dataset.subset(calibration_rows),
            test=dataset.subset(test_rows),
            train_fraction=train_fraction,
            seed=seed,
            train_rows=train_rows,
            calibration_rows=calibration_rows,
            test_rows=test_rows,
        )


def _ensure_entity_coverage(
    dataset: RuntimeDataset,
    train_rows: np.ndarray,
    test_rows: np.ndarray,
    rng: np.random.Generator,
    universe: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Move rows from test → train so every entity appears in training.

    Implements the "each workload/platform is observed at least once"
    assumption; predicting a never-observed entity is out of scope for
    matrix completion (Sec 3.1). ``universe`` restricts the entity sets to
    those referenced by the given rows (the cold-workload split must not
    pull held-out entities back into training).
    """
    train_set = set(train_rows.tolist())
    test_list = test_rows.tolist()

    for entity_ids, column in (
        (np.unique(dataset.w_idx if universe is None else dataset.w_idx[universe]),
         dataset.w_idx),
        (np.unique(dataset.p_idx if universe is None else dataset.p_idx[universe]),
         dataset.p_idx),
    ):
        covered = set(np.unique(column[train_rows]).tolist()) if len(train_rows) else set()
        missing = [e for e in entity_ids if e not in covered]
        for entity in missing:
            candidates = [r for r in test_list if column[r] == entity]
            if not candidates:
                continue
            chosen = candidates[int(rng.integers(len(candidates)))]
            test_list.remove(chosen)
            train_set.add(chosen)
    return np.array(sorted(train_set), dtype=int), np.array(test_list, dtype=int)


def make_split(
    dataset: RuntimeDataset,
    train_fraction: float,
    seed: int,
    calibration_fraction: float = 0.2,
) -> DataSplit:
    """Draw one replicate split.

    Parameters
    ----------
    dataset:
        The full collected dataset.
    train_fraction:
        Fraction of all observations available for training+calibration
        (the x-axis of Figs 4/6).
    seed:
        Replicate seed; different seeds give independent partitions.
    calibration_fraction:
        Portion of the training fraction held out for validation and
        conformal calibration (paper: 20%).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0,1), got {train_fraction}")
    rng = np.random.default_rng(seed)
    n = dataset.n_observations
    perm = rng.permutation(n)
    n_train_total = int(round(train_fraction * n))
    train_total, test_rows = perm[:n_train_total], perm[n_train_total:]
    train_total, test_rows = _ensure_entity_coverage(
        dataset, train_total, test_rows, rng
    )

    # Hold out calibration from the (possibly augmented) training rows.
    perm2 = rng.permutation(len(train_total))
    n_cal = int(round(calibration_fraction * len(train_total)))
    cal_rows = train_total[perm2[:n_cal]]
    train_rows = train_total[perm2[n_cal:]]
    # Entity coverage must also hold for the actual gradient-descent rows.
    train_rows, cal_rows = _ensure_entity_coverage(
        dataset, train_rows, cal_rows, rng
    )

    return DataSplit.from_rows(
        dataset,
        train_rows=train_rows,
        calibration_rows=cal_rows,
        test_rows=test_rows,
        train_fraction=train_fraction,
        seed=seed,
    )


def make_cold_workload_split(
    dataset: RuntimeDataset,
    train_fraction: float,
    seed: int,
    calibration_fraction: float = 0.2,
    holdout_fraction: float = 0.2,
) -> DataSplit:
    """Hold out a workload subset entirely (the unseen-entity regime).

    A ``holdout_fraction`` of workloads is drawn; every observation whose
    target *or* interferer set references one of them goes to test, so
    the model never sees those workloads during training or calibration
    in any role. The remaining observations follow the
    :func:`make_split` protocol (with entity coverage enforced over the
    surviving entities only). Test therefore mixes cold rows with the
    usual warm holdout — the warm/cold contrast is the scenario's
    evaluation axis.
    """
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError(
            f"holdout_fraction must be in (0,1), got {holdout_fraction}"
        )
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0,1), got {train_fraction}")
    rng = np.random.default_rng(seed)
    workload_ids = np.unique(dataset.w_idx)
    n_cold = max(1, int(round(holdout_fraction * len(workload_ids))))
    cold = rng.choice(workload_ids, size=n_cold, replace=False)
    cold_set = np.zeros(dataset.n_workloads + 1, dtype=bool)
    cold_set[cold] = True

    touches_cold = cold_set[dataset.w_idx]
    # Interferer padding is -1; index the sentinel onto a dedicated slot.
    interferer_cold = cold_set[dataset.interferers]
    interferer_cold[dataset.interferers < 0] = False
    touches_cold |= interferer_cold.any(axis=1)

    cold_rows = np.flatnonzero(touches_cold)
    warm_rows = np.flatnonzero(~touches_cold)
    if len(warm_rows) < 2:
        raise ValueError(
            f"cold-workload holdout left {len(warm_rows)} warm observation(s) "
            f"to train on ({len(cold_rows)} of {dataset.n_observations} rows "
            f"touch the {n_cold} held-out workloads); lower holdout_fraction "
            f"or collect a denser dataset"
        )

    perm = rng.permutation(len(warm_rows))
    n_train_total = int(round(train_fraction * len(warm_rows)))
    train_total = warm_rows[perm[:n_train_total]]
    warm_test = warm_rows[perm[n_train_total:]]
    train_total, warm_test = _ensure_entity_coverage(
        dataset, train_total, warm_test, rng, universe=warm_rows
    )

    perm2 = rng.permutation(len(train_total))
    n_cal = int(round(calibration_fraction * len(train_total)))
    cal_rows = train_total[perm2[:n_cal]]
    train_rows = train_total[perm2[n_cal:]]
    train_rows, cal_rows = _ensure_entity_coverage(
        dataset, train_rows, cal_rows, rng, universe=warm_rows
    )

    return DataSplit.from_rows(
        dataset,
        train_rows=train_rows,
        calibration_rows=cal_rows,
        test_rows=np.concatenate([warm_test, cold_rows]),
        train_fraction=train_fraction,
        seed=seed,
    )


def replicate_splits(
    dataset: RuntimeDataset,
    train_fraction: float,
    n_replicates: int,
    base_seed: int = 0,
) -> list[DataSplit]:
    """The paper's replicate protocol: independent splits per replicate."""
    return [
        make_split(dataset, train_fraction, seed=base_seed + 1000 * r)
        for r in range(n_replicates)
    ]
