"""Streaming observation ingestion for the continual-learning lifecycle.

The collection campaign (:mod:`repro.cluster.collection`) is a batch
process: it runs once and produces a frozen :class:`RuntimeDataset`. A
deployed fleet keeps producing ``(workload, platform, interferers,
runtime)`` records after that — and conformal validity only holds while
the calibration set matches the serving distribution (Gui et al., 2023),
so those records have to flow somewhere.

:class:`ObservationBuffer` is that somewhere: a bounded, per-pool rolling
window over the most recent observations. Pools are interference degrees
(1..4) — the same conditioning variable the conformal layer calibrates
on — so each pool's window is an approximately-exchangeable sample of
the *current* serving distribution for that pool, ready to be handed to
:meth:`window_dataset` for warm-start training and rolling
recalibration. Per-pool drift statistics (mean log-runtime shift against
a frozen reference) give the lifecycle loop a cheap trigger signal
without touching model weights.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .dataset import MAX_INTERFERERS, RuntimeDataset, pad_interferers

__all__ = ["ObservationBuffer", "PoolDriftStat"]


@dataclass(frozen=True)
class PoolDriftStat:
    """Drift summary for one calibration pool's rolling window."""

    pool: int
    #: Observations currently buffered for the pool.
    count: int
    #: Mean log-runtime of the buffered window.
    window_mean: float
    #: Reference mean log-runtime (NaN when no reference is set).
    reference_mean: float
    #: ``window_mean − reference_mean`` (NaN without a reference). Under a
    #: multiplicative runtime drift ``C → m·C`` this converges to
    #: ``log m``.
    shift: float
    #: ``|shift|`` in reference standard deviations (NaN without a
    #: reference); a scale-free "how many sigmas did the pool move".
    score: float


#: One buffered record: (sequence id, workload, platform, interferer
#: tuple, runtime seconds).
_Record = tuple[int, int, int, tuple[int, ...], float]


class ObservationBuffer:
    """Bounded per-pool rolling window over streamed runtime records.

    Parameters
    ----------
    window:
        Maximum records retained per pool; older records are evicted
        FIFO, bounding both memory and staleness (a deployed buffer
        forgets pre-drift regimes at the rate it observes).
    reference:
        Optional dataset whose per-pool log-runtime statistics anchor
        :meth:`drift_stats` (typically the calibration split the serving
        predictor was calibrated on). Without it, drift statistics are
        reported as NaN — counts still work.
    """

    def __init__(
        self, window: int = 2000, reference: RuntimeDataset | None = None
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._pools: dict[int, deque[_Record]] = {}
        self._reference: dict[int, tuple[float, float]] = {}
        self._seq = 0
        self.total_ingested = 0
        if reference is not None:
            self.set_reference(reference)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        w_idx: np.ndarray,
        p_idx: np.ndarray,
        interferers: np.ndarray | None,
        runtime: np.ndarray,
    ) -> int:
        """Append a batch of observations; returns the rows ingested.

        ``interferers`` uses the dataset's ``(n, MAX_INTERFERERS)``
        ``-1``-padded convention (``None`` means all-isolation). Each row
        lands in its interference-degree pool's window, evicting the
        oldest record once the window is full.
        """
        w_idx = np.asarray(w_idx, dtype=np.intp)
        p_idx = np.asarray(p_idx, dtype=np.intp)
        runtime = np.asarray(runtime, dtype=np.float64)
        n = len(runtime)
        if not (len(w_idx) == len(p_idx) == n):
            raise ValueError("observation arrays must share length")
        if np.any(runtime <= 0):
            raise ValueError("runtimes must be positive")
        if interferers is None:
            interferers = np.full((n, MAX_INTERFERERS), -1, dtype=np.intp)
        else:
            interferers = np.atleast_2d(np.asarray(interferers, dtype=np.intp))
            if interferers.shape != (n, MAX_INTERFERERS):
                raise ValueError(
                    f"interferers must be (n, {MAX_INTERFERERS}), "
                    f"got {interferers.shape}"
                )
        pools = 1 + (interferers >= 0).sum(axis=1)
        for i in range(n):
            co = tuple(int(x) for x in interferers[i] if x >= 0)
            record = (
                self._seq,
                int(w_idx[i]),
                int(p_idx[i]),
                co,
                float(runtime[i]),
            )
            self._pools.setdefault(
                int(pools[i]), deque(maxlen=self.window)
            ).append(record)
            self._seq += 1
        self.total_ingested += n
        return n

    def ingest_dataset(self, ds: RuntimeDataset) -> int:
        """Ingest every row of a dataset (trace-replay convenience)."""
        return self.ingest(ds.w_idx, ds.p_idx, ds.interferers, ds.runtime)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def n_buffered(self, pool: int | None = None) -> int:
        """Buffered record count, total or for one pool."""
        if pool is not None:
            return len(self._pools.get(pool, ()))
        return sum(len(q) for q in self._pools.values())

    def pools(self) -> list[int]:
        """Pools with at least one buffered record, sorted."""
        return sorted(p for p, q in self._pools.items() if q)

    def clear(self) -> None:
        """Drop every buffered record (reference statistics are kept)."""
        self._pools.clear()

    # ------------------------------------------------------------------
    # Drift statistics
    # ------------------------------------------------------------------
    def set_reference(self, dataset: RuntimeDataset) -> None:
        """Anchor drift statistics to a dataset's per-pool distribution."""
        log_rt = dataset.log_runtime
        degree = dataset.degree
        self._reference = {}
        for pool in np.unique(degree):
            rows = log_rt[degree == pool]
            self._reference[int(pool)] = (
                float(rows.mean()),
                float(rows.std()),
            )

    def drift_stats(self) -> dict[int, PoolDriftStat]:
        """Per-pool :class:`PoolDriftStat` for every non-empty window."""
        stats: dict[int, PoolDriftStat] = {}
        for pool in self.pools():
            window_mean = float(
                np.mean([np.log(rec[4]) for rec in self._pools[pool]])
            )
            ref = self._reference.get(pool)
            if ref is None:
                ref_mean = shift = score = float("nan")
            else:
                ref_mean, ref_std = ref
                shift = window_mean - ref_mean
                score = abs(shift) / max(ref_std, 1e-12)
            stats[pool] = PoolDriftStat(
                pool=pool,
                count=len(self._pools[pool]),
                window_mean=window_mean,
                reference_mean=ref_mean,
                shift=shift,
                score=score,
            )
        return stats

    def max_drift_score(self) -> float:
        """Largest per-pool drift score (0.0 when nothing is buffered)."""
        scores = [
            s.score for s in self.drift_stats().values() if np.isfinite(s.score)
        ]
        return max(scores) if scores else 0.0

    # ------------------------------------------------------------------
    # Window materialization
    # ------------------------------------------------------------------
    def window_rows(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The buffered window as dataset-shaped arrays.

        Rows are merged across pools in ingestion order (oldest first),
        so the result is the stream's most recent suffix per pool.
        Returns ``(w_idx, p_idx, interferers, runtime)``.
        """
        records: list[_Record] = []
        for q in self._pools.values():
            records.extend(q)
        records.sort(key=lambda rec: rec[0])
        if not records:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty((0, MAX_INTERFERERS), dtype=np.int64),
                np.empty(0),
            )
        w = np.array([rec[1] for rec in records], dtype=np.int64)
        p = np.array([rec[2] for rec in records], dtype=np.int64)
        co = pad_interferers([rec[3] for rec in records]).astype(np.int64)
        runtime = np.array([rec[4] for rec in records])
        return w, p, co, runtime

    def window_dataset(self, features_from: RuntimeDataset) -> RuntimeDataset:
        """Materialize the window as a :class:`RuntimeDataset`.

        ``features_from`` supplies the side-information matrices (the
        stream carries indices, not features); raises when the buffer is
        empty — an empty calibration set has no conformal meaning.
        """
        w, p, co, runtime = self.window_rows()
        if len(runtime) == 0:
            raise ValueError("cannot materialize an empty observation buffer")
        return RuntimeDataset(
            w_idx=w,
            p_idx=p,
            interferers=co,
            runtime=runtime,
            workload_features=features_from.workload_features,
            platform_features=features_from.platform_features,
            workloads=features_from.workloads,
            platforms=features_from.platforms,
            workload_feature_names=features_from.workload_feature_names,
            platform_feature_names=features_from.platform_feature_names,
        )
