"""Observation container: the runtime dataset.

Mirrors the published dataset's schema: every row is one
(workload, platform, interference-set) observation with a measured wall
clock runtime (Sec 4 / App C.3). Interference sets hold up to 3 interferer
indices, ``-1``-padded; ``degree`` is the number of simultaneously-running
workloads (1 = isolation, 2–4 = the paper's "2/3/4-way interference").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..platforms.platform import Platform
from ..workloads.workload import Workload

__all__ = [
    "RuntimeDataset",
    "DATASET_SCHEMA_VERSION",
    "check_schema_version",
    "DEGREES",
    "MAX_INTERFERERS",
    "pad_interferers",
]

#: Degrees present in the paper's dataset.
DEGREES: tuple[int, ...] = (1, 2, 3, 4)
#: Up to 3 interfering workloads (4-way).
MAX_INTERFERERS: int = 3
#: On-disk ``.npz`` schema version. Bump whenever the archive layout
#: changes shape or meaning; :meth:`RuntimeDataset.load` refuses archives
#: written under any other version, so cached pipeline artifacts fail
#: loudly instead of deserializing garbage.
DATASET_SCHEMA_VERSION: int = 1


def check_schema_version(
    archive, expected: int, kind: str, path: str | Path
) -> None:
    """Validate an ``.npz`` archive's ``schema_version`` entry.

    Shared by every persistence layer (datasets, models, pipeline
    artifacts): raises ``ValueError`` naming the file, the found version,
    and the expected one — both for archives written before versioning
    existed (no entry) and for genuine mismatches.
    """
    if "schema_version" not in getattr(archive, "files", archive):
        raise ValueError(
            f"{path}: no schema_version entry; this {kind} archive predates "
            f"schema versioning (expected version {expected}). Re-create it "
            f"with the current code."
        )
    found = int(archive["schema_version"])
    if found != expected:
        raise ValueError(
            f"{path}: {kind} schema version {found} does not match this "
            f"code's version {expected}; re-create the archive rather than "
            f"risking silent misinterpretation."
        )


def pad_interferers(rows: list[tuple[int, ...]] | list[list[int]]) -> np.ndarray:
    """Ragged interferer lists → the dataset's ``-1``-padded matrix.

    The single place that knows the padding convention; shared by the
    serving queue and the CLI front-ends.
    """
    out = np.full((len(rows), MAX_INTERFERERS), -1, dtype=np.intp)
    for i, co in enumerate(rows):
        if len(co) > MAX_INTERFERERS:
            raise ValueError(
                f"at most {MAX_INTERFERERS} interferers supported, got {len(co)}"
            )
        out[i, : len(co)] = co
    return out


@dataclass
class RuntimeDataset:
    """A collected runtime dataset plus the side information matrices.

    Attributes
    ----------
    w_idx, p_idx:
        ``(n,)`` workload / platform indices per observation.
    interferers:
        ``(n, MAX_INTERFERERS)`` interferer workload indices, ``-1``-padded.
    runtime:
        ``(n,)`` measured runtimes in seconds.
    workload_features, platform_features:
        Side information ``x_w`` (log opcode counts) and ``x_p``.
    workloads, platforms:
        Entity metadata (may be ``None`` after a bare npz load).
    """

    w_idx: np.ndarray
    p_idx: np.ndarray
    interferers: np.ndarray
    runtime: np.ndarray
    workload_features: np.ndarray
    platform_features: np.ndarray
    workloads: list[Workload] | None = None
    platforms: list[Platform] | None = None
    workload_feature_names: list[str] = field(default_factory=list)
    platform_feature_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.runtime)
        if not (len(self.w_idx) == len(self.p_idx) == n):
            raise ValueError("observation arrays must share length")
        if self.interferers.shape != (n, MAX_INTERFERERS):
            raise ValueError(
                f"interferers must be (n, {MAX_INTERFERERS}), "
                f"got {self.interferers.shape}"
            )
        if np.any(self.runtime <= 0):
            raise ValueError("runtimes must be positive")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_observations(self) -> int:
        return len(self.runtime)

    @property
    def n_workloads(self) -> int:
        return self.workload_features.shape[0]

    @property
    def n_platforms(self) -> int:
        return self.platform_features.shape[0]

    @property
    def degree(self) -> np.ndarray:
        """Simultaneously-running workload count per row (1..4)."""
        return 1 + (self.interferers >= 0).sum(axis=1)

    @property
    def log_runtime(self) -> np.ndarray:
        """Natural-log runtimes (the model's target domain)."""
        return np.log(self.runtime)

    def degree_mask(self, degree: int) -> np.ndarray:
        return self.degree == degree

    def isolation_mask(self) -> np.ndarray:
        return self.degree == 1

    def interference_mask(self) -> np.ndarray:
        return self.degree > 1

    def degree_counts(self) -> dict[int, int]:
        """Observation count per degree — the Sec 4 dataset statistics."""
        deg = self.degree
        return {d: int((deg == d).sum()) for d in DEGREES}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "RuntimeDataset":
        """Row-subset view (copies observation arrays, shares features)."""
        indices = np.asarray(indices)
        return RuntimeDataset(
            w_idx=self.w_idx[indices],
            p_idx=self.p_idx[indices],
            interferers=self.interferers[indices],
            runtime=self.runtime[indices],
            workload_features=self.workload_features,
            platform_features=self.platform_features,
            workloads=self.workloads,
            platforms=self.platforms,
            workload_feature_names=self.workload_feature_names,
            platform_feature_names=self.platform_feature_names,
        )

    def isolation_only(self) -> "RuntimeDataset":
        """Observations without interference (the "discard" strategy)."""
        return self.subset(np.flatnonzero(self.isolation_mask()))

    def isolation_mean_log10(self) -> np.ndarray:
        """Mean isolation log10 runtime per (workload, platform) pair.

        ``NaN`` where a pair was never observed in isolation. Used for the
        Fig 1 slowdown histogram and Fig 12d's measured interference.
        """
        iso = self.isolation_mask()
        sums = np.zeros((self.n_workloads, self.n_platforms))
        counts = np.zeros_like(sums)
        np.add.at(sums, (self.w_idx[iso], self.p_idx[iso]), np.log10(self.runtime[iso]))
        np.add.at(counts, (self.w_idx[iso], self.p_idx[iso]), 1.0)
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1.0), np.nan)

    def summary(self) -> dict[str, int]:
        """Dataset statistics in the shape of Sec 4's accounting."""
        counts = self.degree_counts()
        return {
            "n_workloads": self.n_workloads,
            "n_platforms": self.n_platforms,
            "n_observations": self.n_observations,
            "n_isolation": counts[1],
            "n_interference": sum(counts[d] for d in (2, 3, 4)),
            "n_2way": counts[2],
            "n_3way": counts[3],
            "n_4way": counts[4],
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Save observations + features to an ``.npz`` archive."""
        np.savez_compressed(
            Path(path),
            schema_version=np.array(DATASET_SCHEMA_VERSION),
            w_idx=self.w_idx,
            p_idx=self.p_idx,
            interferers=self.interferers,
            runtime=self.runtime,
            workload_features=self.workload_features,
            platform_features=self.platform_features,
            workload_feature_names=np.array(self.workload_feature_names, dtype=object),
            platform_feature_names=np.array(self.platform_feature_names, dtype=object),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RuntimeDataset":
        """Load a dataset saved with :meth:`save` (metadata-free).

        Raises ``ValueError`` when the archive's schema version is absent
        or differs from :data:`DATASET_SCHEMA_VERSION`.
        """
        with np.load(Path(path), allow_pickle=True) as archive:
            check_schema_version(archive, DATASET_SCHEMA_VERSION, "dataset", path)
            return cls(
                w_idx=archive["w_idx"],
                p_idx=archive["p_idx"],
                interferers=archive["interferers"],
                runtime=archive["runtime"],
                workload_features=archive["workload_features"],
                platform_features=archive["platform_features"],
                workload_feature_names=list(archive["workload_feature_names"]),
                platform_feature_names=list(archive["platform_feature_names"]),
            )
