"""Adapters between external runtime traces and :class:`RuntimeDataset`.

The authors' real dataset is published (github.com/wiseLabCMU/pitot /
zenodo 14977004); this repository substitutes a simulator, but the whole
pipeline is trace-agnostic: anything expressible as rows of
``(workload, platform, interferers..., runtime_seconds)`` plus two
feature matrices trains identically. This module provides a documented
CSV interchange format so real traces (or other simulators) can be
plugged in:

* observations CSV: header ``workload,platform,interferer1,interferer2,
  interferer3,runtime_s`` — interferer columns empty or ``-1`` when
  absent;
* feature CSVs: one row per entity, first column ``id`` (must be the
  contiguous 0..N−1 index), remaining columns features.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .dataset import MAX_INTERFERERS, RuntimeDataset

__all__ = ["export_observations_csv", "import_trace_csv"]

_OBS_HEADER = [
    "workload", "platform",
    "interferer1", "interferer2", "interferer3",
    "runtime_s",
]


def export_observations_csv(dataset: RuntimeDataset, path: str | Path) -> None:
    """Write the observation table in the interchange format."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_OBS_HEADER)
        for row in range(dataset.n_observations):
            interferers = [
                "" if k < 0 else str(int(k))
                for k in dataset.interferers[row]
            ]
            writer.writerow([
                int(dataset.w_idx[row]),
                int(dataset.p_idx[row]),
                *interferers,
                repr(float(dataset.runtime[row])),
            ])


def _read_feature_csv(path: Path) -> np.ndarray:
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if not header or header[0] != "id":
            raise ValueError(f"{path}: first column must be 'id'")
        rows = sorted((int(r[0]), [float(v) for v in r[1:]]) for r in reader)
    ids = [r[0] for r in rows]
    if ids != list(range(len(ids))):
        raise ValueError(f"{path}: ids must be contiguous 0..N-1")
    return np.asarray([r[1] for r in rows], dtype=np.float64)


def import_trace_csv(
    observations_path: str | Path,
    workload_features_path: str | Path,
    platform_features_path: str | Path,
) -> RuntimeDataset:
    """Load an external trace in the interchange format.

    Validates index ranges and runtime positivity; raises ``ValueError``
    with the offending line on malformed input.
    """
    w_feat = _read_feature_csv(Path(workload_features_path))
    p_feat = _read_feature_csv(Path(platform_features_path))

    w_idx, p_idx, interferers, runtime = [], [], [], []
    with open(Path(observations_path), newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != _OBS_HEADER:
            raise ValueError(
                f"unexpected header {header!r}; expected {_OBS_HEADER!r}"
            )
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(_OBS_HEADER):
                raise ValueError(f"line {line_no}: wrong column count")
            w = int(row[0])
            p = int(row[1])
            ks = [int(v) if v not in ("", "-1") else -1 for v in row[2:5]]
            r = float(row[5])
            if not 0 <= w < len(w_feat):
                raise ValueError(f"line {line_no}: workload {w} out of range")
            if not 0 <= p < len(p_feat):
                raise ValueError(f"line {line_no}: platform {p} out of range")
            if any(k >= len(w_feat) for k in ks):
                raise ValueError(f"line {line_no}: interferer out of range")
            if r <= 0:
                raise ValueError(f"line {line_no}: runtime must be positive")
            w_idx.append(w)
            p_idx.append(p)
            interferers.append(ks)
            runtime.append(r)

    return RuntimeDataset(
        w_idx=np.asarray(w_idx, dtype=np.int64),
        p_idx=np.asarray(p_idx, dtype=np.int64),
        interferers=np.asarray(interferers, dtype=np.int64).reshape(
            -1, MAX_INTERFERERS
        ),
        runtime=np.asarray(runtime, dtype=np.float64),
        workload_features=w_feat,
        platform_features=p_feat,
    )
