"""Simulated data-collection campaigns (App C.3).

Reproduces the paper's methodology:

* **Isolation campaign** — every supported (workload, platform) pair is
  run up to 50 repetitions within a 30-second budget and the wall-clock
  mean recorded; pairs that crash or exceed the timeout are omitted.
* **Interference campaign** — per platform, ``sets_per_degree`` random
  sets of 2/3/4 workloads run simultaneously for 30 seconds in a loop.
  A set containing a crashing workload is dropped entirely; a workload
  that times out is dropped but its co-runners keep their observations
  (timed-out workloads still interfere).

With the full inventory this yields ≈47k isolation + ≈324k interference
observations (101k/122k/100k across 2/3/4-way), matching the scale and
attrition shape of the paper's 53,637 + 357,333 (99k/139k/119k).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..platforms.platform import generate_platforms
from ..platforms.features import platform_feature_matrix
from ..workloads.workload import generate_workloads, workload_feature_matrix
from .dataset import MAX_INTERFERERS, RuntimeDataset
from .performance import GroundTruthPerformanceModel, PerformanceModelConfig

__all__ = [
    "CollectionConfig",
    "ClusterCollector",
    "collect_dataset",
    "make_cluster",
    "synthetic_fleet_dataset",
]


@dataclass(frozen=True)
class CollectionConfig:
    """Campaign parameters (paper values as defaults)."""

    #: Per-benchmark execution budget, seconds.
    time_budget_s: float = 30.0
    #: Maximum averaging repetitions within the budget.
    max_repetitions: int = 50
    #: Random co-running sets per degree per platform (paper: 250).
    sets_per_degree: int = 250
    #: Interference degrees collected (number of simultaneous workloads).
    degrees: tuple[int, ...] = (2, 3, 4)
    #: Per-member timeout probability under co-execution is
    #: ``base * (degree - 1)^2`` — random program alignment means a member
    #: can fail to complete a single iteration within the budget even when
    #: its mean runtime fits. Drives the paper's attrition pattern, where
    #: 4-way yields *fewer* usable observations than 3-way (App C.3).
    interference_timeout_base: float = 0.055
    #: Per-set crash probability is ``rate * degree``; a crash drops the
    #: entire set ("that entire set was excluded", App C.3).
    set_crash_rate: float = 0.01


class ClusterCollector:
    """Runs collection campaigns against a ground-truth model."""

    def __init__(
        self,
        model: GroundTruthPerformanceModel,
        config: CollectionConfig | None = None,
    ) -> None:
        self.model = model
        self.config = config or CollectionConfig()

    # ------------------------------------------------------------------
    def collect_isolation(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Benchmark every valid pair in isolation.

        Returns ``(w_idx, p_idx, runtime_seconds)`` for pairs that neither
        crashed nor timed out.
        """
        cfg = self.config
        nw = len(self.model.workloads)
        npf = len(self.model.platforms)
        w_grid, p_grid = np.meshgrid(np.arange(nw), np.arange(npf), indexing="ij")
        w_flat, p_flat = w_grid.ravel(), p_grid.ravel()

        ok = ~self.model.crash_table[w_flat, p_flat]
        # Timeout: the true isolation runtime exceeds the budget.
        true_log10 = self.model.isolation_log10(w_flat, p_flat)
        ok &= true_log10 <= np.log10(cfg.time_budget_s)
        w_flat, p_flat, true_log10 = w_flat[ok], p_flat[ok], true_log10[ok]

        reps = np.clip(
            np.floor(cfg.time_budget_s / 10.0**true_log10),
            1,
            cfg.max_repetitions,
        )
        runtime = self.model.sample_runtime(
            w_flat, p_flat, None, rng, averaging_reps=reps
        )
        return w_flat, p_flat, runtime

    # ------------------------------------------------------------------
    def collect_interference(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run random co-running sets per platform.

        Returns ``(w_idx, p_idx, interferers, runtime_seconds)``. Sets are
        sampled uniformly from workloads that run on the platform (no
        crash, isolation runtime within budget — mirroring that the paper
        sampled from benchmarks known to work).
        """
        cfg = self.config
        npf = len(self.model.platforms)
        budget_log10 = np.log10(cfg.time_budget_s)

        out_w: list[np.ndarray] = []
        out_p: list[np.ndarray] = []
        out_k: list[np.ndarray] = []
        out_r: list[np.ndarray] = []

        for j in range(npf):
            valid = np.flatnonzero(
                (~self.model.crash_table[:, j])
                & (self.model.log10_isolation[:, j] <= budget_log10)
            )
            if len(valid) < max(cfg.degrees):
                continue
            for degree in cfg.degrees:
                # (sets, degree) matrix of distinct workloads per row.
                sets = np.stack(
                    [
                        rng.choice(valid, size=degree, replace=False)
                        for _ in range(cfg.sets_per_degree)
                    ]
                )
                n_sets = sets.shape[0]
                # Failure injection (App C.3): whole-set crashes and
                # per-member alignment timeouts, both growing with degree.
                set_crashed = rng.random(n_sets) < cfg.set_crash_rate * degree
                member_timeout = (
                    rng.random((n_sets, degree))
                    < cfg.interference_timeout_base * (degree - 1) ** 2
                )
                # Each member observes the rest of its set as interference.
                for slot in range(degree):
                    targets = sets[:, slot]
                    others = np.delete(sets, slot, axis=1)
                    pad = np.full(
                        (n_sets, MAX_INTERFERERS - others.shape[1]), -1, dtype=int
                    )
                    interf = np.concatenate([others, pad], axis=1)
                    p_arr = np.full(n_sets, j)
                    true_log10 = self.model.true_log10(targets, p_arr, interf)
                    # Timed-out members yield no observation (but their
                    # co-runners were still interfered with, and keep theirs).
                    alive = (
                        (true_log10 <= budget_log10)
                        & ~set_crashed
                        & ~member_timeout[:, slot]
                    )
                    if not alive.any():
                        continue
                    reps = np.clip(
                        np.floor(cfg.time_budget_s / 10.0 ** true_log10[alive]),
                        1,
                        cfg.max_repetitions,
                    )
                    runtime = self.model.sample_runtime(
                        targets[alive], p_arr[alive], interf[alive], rng,
                        averaging_reps=reps,
                    )
                    out_w.append(targets[alive])
                    out_p.append(p_arr[alive])
                    out_k.append(interf[alive])
                    out_r.append(runtime)

        if not out_w:
            empty = np.empty(0, dtype=int)
            return empty, empty, np.empty((0, MAX_INTERFERERS), dtype=int), np.empty(0)
        return (
            np.concatenate(out_w),
            np.concatenate(out_p),
            np.concatenate(out_k),
            np.concatenate(out_r),
        )

    # ------------------------------------------------------------------
    def collect(self, rng: np.random.Generator) -> RuntimeDataset:
        """Full campaign: isolation + interference, one dataset."""
        iso_w, iso_p, iso_r = self.collect_isolation(rng)
        int_w, int_p, int_k, int_r = self.collect_interference(rng)

        iso_k = np.full((len(iso_w), MAX_INTERFERERS), -1, dtype=int)
        w_feat, w_names = workload_feature_matrix(self.model.workloads)
        p_feat, p_names = platform_feature_matrix(self.model.platforms)
        return RuntimeDataset(
            w_idx=np.concatenate([iso_w, int_w]).astype(np.int64),
            p_idx=np.concatenate([iso_p, int_p]).astype(np.int64),
            interferers=np.concatenate([iso_k, int_k]).astype(np.int64),
            runtime=np.concatenate([iso_r, int_r]),
            workload_features=w_feat,
            platform_features=p_feat,
            workloads=self.model.workloads,
            platforms=self.model.platforms,
            workload_feature_names=w_names,
            platform_feature_names=p_names,
        )


def make_cluster(
    seed: int = 0,
    n_workloads: int | None = None,
    n_devices: int | None = None,
    n_runtimes: int | None = None,
    performance_config: PerformanceModelConfig | None = None,
) -> GroundTruthPerformanceModel:
    """Build a (possibly miniature) simulated cluster.

    ``None`` limits reproduce the paper-scale inventory (249 workloads,
    24 devices × 10 runtimes → 220 platforms). Tests and fast benches pass
    small limits; workloads/devices are subsampled with stride so every
    suite and device class stays represented.
    """
    from ..platforms.devices import DEVICES
    from ..platforms.runtimes import RUNTIMES

    rng = np.random.default_rng(seed)
    workloads = generate_workloads(rng)
    if n_workloads is not None and n_workloads < len(workloads):
        keep = np.linspace(0, len(workloads) - 1, n_workloads).astype(int)
        workloads = [workloads[i] for i in keep]
        for new_idx, w in enumerate(workloads):
            w.index = new_idx

    devices = DEVICES
    if n_devices is not None and n_devices < len(devices):
        keep = np.linspace(0, len(devices) - 1, n_devices).astype(int)
        devices = [devices[i] for i in keep]
    runtimes = RUNTIMES
    if n_runtimes is not None and n_runtimes < len(runtimes):
        keep = np.linspace(0, len(runtimes) - 1, n_runtimes).astype(int)
        runtimes = [runtimes[i] for i in keep]

    platforms = generate_platforms(devices, runtimes)
    return GroundTruthPerformanceModel(
        workloads, platforms, rng, config=performance_config
    )


def synthetic_fleet_dataset(
    n_workloads: int,
    n_platforms: int,
    n_observations: int | None = None,
    seed: int = 0,
    n_workload_features: int = 20,
    n_platform_features: int = 12,
) -> RuntimeDataset:
    """A runtime dataset with the published schema at arbitrary scale.

    The trace collector enumerates real (device, runtime) inventories and
    tops out near the paper's 249×220 grid; fleet-scale scenarios
    (e.g. ``fleet-large``'s 32768×4096) instead draw features, indices,
    and log-normal runtimes directly. Shapes, index distributions, and the
    2/3/4-way interference mix match the collected schema, so everything
    downstream — sparse training, calibration, serving — runs unchanged.
    """
    if n_observations is None:
        n_observations = 16 * max(n_workloads, n_platforms)
    rng = np.random.default_rng(seed)
    w_idx = rng.integers(0, n_workloads, n_observations)
    p_idx = rng.integers(0, n_platforms, n_observations)
    interferers = np.full((n_observations, MAX_INTERFERERS), -1, dtype=np.intp)
    degree = rng.integers(1, 5, n_observations)
    for d in (2, 3, 4):
        rows = np.flatnonzero(degree == d)
        interferers[rows[:, None], np.arange(d - 1)[None, :]] = rng.integers(
            0, n_workloads, (len(rows), d - 1)
        )
    return RuntimeDataset(
        w_idx=w_idx.astype(np.int64),
        p_idx=p_idx.astype(np.int64),
        interferers=interferers.astype(np.int64),
        runtime=np.exp(rng.normal(0.0, 1.0, n_observations)),
        workload_features=rng.normal(size=(n_workloads, n_workload_features)),
        platform_features=rng.normal(size=(n_platforms, n_platform_features)),
    )


def collect_dataset(
    seed: int = 0,
    n_workloads: int | None = None,
    n_devices: int | None = None,
    n_runtimes: int | None = None,
    sets_per_degree: int = 250,
    performance_config: PerformanceModelConfig | None = None,
) -> RuntimeDataset:
    """One-call convenience: build a cluster and run the full campaign."""
    model = make_cluster(
        seed=seed,
        n_workloads=n_workloads,
        n_devices=n_devices,
        n_runtimes=n_runtimes,
        performance_config=performance_config,
    )
    collector = ClusterCollector(
        model, CollectionConfig(sets_per_degree=sets_per_degree)
    )
    return collector.collect(np.random.default_rng(seed + 1))
