"""Simulated heterogeneous cluster: ground truth, collection, datasets.

Substitutes for the paper's physical 24-device testbed (Fig 3). See
DESIGN.md §2 for the substitution rationale.
"""

from .collection import (
    ClusterCollector,
    CollectionConfig,
    collect_dataset,
    make_cluster,
)
from .dataset import DEGREES, MAX_INTERFERERS, RuntimeDataset
from .performance import GroundTruthPerformanceModel, PerformanceModelConfig
from .splits import DataSplit, make_split, replicate_splits
from .trace_io import export_observations_csv, import_trace_csv

__all__ = [
    "GroundTruthPerformanceModel",
    "PerformanceModelConfig",
    "ClusterCollector",
    "CollectionConfig",
    "collect_dataset",
    "make_cluster",
    "RuntimeDataset",
    "DEGREES",
    "MAX_INTERFERERS",
    "DataSplit",
    "make_split",
    "replicate_splits",
    "export_observations_csv",
    "import_trace_csv",
]
