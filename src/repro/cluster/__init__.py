"""Simulated heterogeneous cluster: ground truth, collection, datasets.

Substitutes for the paper's physical 24-device testbed (Fig 3). See
DESIGN.md §2 for the substitution rationale.
"""

from .collection import (
    ClusterCollector,
    CollectionConfig,
    collect_dataset,
    make_cluster,
    synthetic_fleet_dataset,
)
from .dataset import (
    DATASET_SCHEMA_VERSION,
    DEGREES,
    MAX_INTERFERERS,
    RuntimeDataset,
)
from .performance import GroundTruthPerformanceModel, PerformanceModelConfig
from .splits import (
    DataSplit,
    make_cold_workload_split,
    make_split,
    replicate_splits,
)
from .stream import ObservationBuffer, PoolDriftStat
from .trace_io import export_observations_csv, import_trace_csv

__all__ = [
    "GroundTruthPerformanceModel",
    "PerformanceModelConfig",
    "ClusterCollector",
    "CollectionConfig",
    "collect_dataset",
    "make_cluster",
    "synthetic_fleet_dataset",
    "RuntimeDataset",
    "DATASET_SCHEMA_VERSION",
    "DEGREES",
    "MAX_INTERFERERS",
    "DataSplit",
    "make_split",
    "make_cold_workload_split",
    "replicate_splits",
    "ObservationBuffer",
    "PoolDriftStat",
    "export_observations_csv",
    "import_trace_csv",
]
