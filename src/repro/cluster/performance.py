"""Ground-truth performance model for the simulated cluster.

This module replaces the physical testbed of Fig 3. It assigns every
(workload, platform, interference-set) tuple a *true* runtime with the same
structure the paper observes in its measurements:

**Isolation runtime** (log10 seconds) is log-additive — the justification
for the paper's log objective (Sec 3.2):

    log10 C(i,j) = d_i                      (workload difficulty)
                 + s_j                      (platform slowness)
                 + m_i · c_j                (instruction-mix × per-category cost)
                 + cache_penalty(i, j)      (nonlinear working-set effect)
                 + u_i · q_j                (idiosyncratic low-rank residual)

The mix term and cache penalty are (noisily) predictable from the side
features, which is what makes features valuable (Fig 4b); the ``u·q``
residual is *not* a function of features, which is why Pitot's learned
features φ are essential (App D.2, q=0 ablation).

**Interference** follows the paper's susceptibility/magnitude structure
(Sec 3.4) with two true contention types — CPU/scheduler and
memory/cache — each with a platform capacity threshold, so interference is
small until co-runners saturate the resource (the behaviour motivating the
activation α in Eq. 9). Weak devices and interpreters amplify contention
(Fig 12d). 4-way tails reach ~20× (Fig 1).

**Noise** is multiplicative (log-normal) and heteroscedastic: it grows
with the number of co-runners and with the device's ``noise_scale``, which
is what makes per-degree calibration pools worthwhile (Sec 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..platforms.platform import Platform
from ..workloads.workload import Workload

__all__ = ["GroundTruthPerformanceModel", "PerformanceModelConfig"]


@dataclass(frozen=True)
class PerformanceModelConfig:
    """Tunable knobs of the ground-truth generator.

    Defaults are calibrated so the synthetic dataset reproduces Fig 1's
    slowdown histogram shape: median ~1.1–1.5×, tails to ~20×.
    """

    #: Scale of the idiosyncratic low-rank residual (per factor).
    residual_scale: float = 0.045
    #: Rank of the idiosyncratic residual.
    residual_rank: int = 3
    #: Log10 penalty per unit of working-set overflow beyond cache.
    cache_penalty_coef: float = 0.028
    #: Strength multiplier on all interference.
    interference_strength: float = 1.0
    #: Baseline log10 noise sigma (≈3% runtime jitter at degree 1).
    noise_base: float = 0.013
    #: Extra noise sigma per interfering workload.
    noise_per_interferer: float = 0.014
    #: Probability of a one-sided outlier (scheduling hiccup) per obs.
    outlier_prob: float = 0.01
    #: Outlier magnitude upper bound (log10).
    outlier_max: float = 0.18


class GroundTruthPerformanceModel:
    """Deterministic ground truth + stochastic measurement model.

    All structural randomness (cost profiles, residual factors, crash
    table) is drawn once at construction from ``rng``; measurement noise
    is drawn per call from the generator passed to :meth:`sample_runtime`.
    """

    def __init__(
        self,
        workloads: list[Workload],
        platforms: list[Platform],
        rng: np.random.Generator,
        config: PerformanceModelConfig | None = None,
    ) -> None:
        self.workloads = workloads
        self.platforms = platforms
        self.config = config or PerformanceModelConfig()
        cfg = self.config
        nw, npf = len(workloads), len(platforms)

        # ---------------- isolation structure ----------------
        d = np.array([w.log10_ref_seconds for w in workloads])
        s = np.array(
            [-p.device.log10_speed + p.runtime.log10_slowdown for p in platforms]
        )

        mix = np.stack([w.category_mix for w in workloads])  # (Nw, ncat)
        ncat = mix.shape[1]
        from ..workloads.opcodes import OpcodeCategory

        cats = list(OpcodeCategory)
        # Platform per-category log10 cost deviations: runtime bias + a
        # device-level profile (weak FPUs on low-end parts, etc.).
        cost = np.zeros((npf, ncat))
        for j, plat in enumerate(platforms):
            for ci, cat in enumerate(cats):
                cost[j, ci] += plat.runtime.category_bias.get(cat, 0.0)
            dev = plat.device
            fp_weak = max(0.0, -dev.log10_speed - 0.6) * 0.25
            cost[j, cats.index(OpcodeCategory.FLOAT_ARITH)] += fp_weak
            cost[j, cats.index(OpcodeCategory.FLOAT_SPECIAL)] += fp_weak * 1.4
            if dev.is_mcu:
                # No OS: control flow and syscall-ish ops relatively cheap.
                cost[j, cats.index(OpcodeCategory.CONTROL)] -= 0.15
            # Small device-specific jitter (compiler/OS quirks).
            cost[j] += rng.normal(0.0, 0.02, size=ncat)
        # Center the mix so the cost term is a deviation, not a second
        # global difficulty term.
        mix_centered = mix - mix.mean(axis=0, keepdims=True)
        interaction = mix_centered @ cost.T * 3.0  # (Nw, Np)

        # Working-set vs cache-size nonlinearity.
        total_ops = np.array([max(w.opcode_counts.sum(), 1.0) for w in workloads])
        mem_pressure = np.array([w.memory_pressure for w in workloads])
        ws = np.clip(np.log2(total_ops) * 0.55 + mem_pressure * 6.0, 4.0, 26.0)
        cache = np.array(
            [
                np.log2(
                    (p.device.l3_kb or 0.0)
                    + (p.device.l2_kb or 0.0)
                    + (p.device.l1d_kb or 16.0)
                )
                for p in platforms
            ]
        )
        overflow = np.maximum(ws[:, None] - (cache[None, :] + 6.0), 0.0)
        cache_term = cfg.cache_penalty_coef * overflow * mem_pressure[:, None]

        u = rng.normal(0.0, cfg.residual_scale, size=(nw, cfg.residual_rank))
        q = rng.normal(0.0, 1.0, size=(npf, cfg.residual_rank))
        residual = u @ q.T

        #: (Nw, Np) noise-free isolation log10 runtimes.
        self.log10_isolation: np.ndarray = (
            d[:, None] + s[None, :] + interaction + cache_term + residual
        )

        # ---------------- interference structure ----------------
        # Magnitudes: how much contention workload k *generates*.
        compute_p = np.array([w.compute_pressure for w in workloads])
        io_p = np.array([w.io_pressure for w in workloads])
        self._mag = np.stack(
            [compute_p, np.clip(mem_pressure + 0.3 * io_p, 0, 1.2)], axis=1
        )  # (Nw, 2)
        # Susceptibilities: how much workload i *suffers* per type. The
        # lognormal multiplier gives a heavy right tail — a minority of
        # workloads are dramatically interference-sensitive, producing the
        # 10–20x extremes of Fig 1.
        sus_tail = np.exp(rng.normal(0.0, 0.5, size=(nw, 2)))
        self._sus = (
            np.stack(
                [0.25 + 0.75 * compute_p, np.clip(0.15 + mem_pressure, 0, 1.2)],
                axis=1,
            )
            * sus_tail
        )  # (Nw, 2)

        plat_contention = np.array(
            [
                p.device.contention_scale * p.runtime.contention_factor
                for p in platforms
            ]
        )
        # Per-platform scale of each contention type: memory contention
        # dominates on small-cache devices, CPU contention on few-core.
        cores = np.array([p.device.cores for p in platforms], dtype=float)
        self._plat_scale = np.stack(
            [
                0.22 * plat_contention * (4.0 / np.maximum(cores, 1.0)) ** 0.5,
                0.45 * plat_contention,
            ],
            axis=1,
        ) * cfg.interference_strength  # (Np, 2)
        # Capacity thresholds: contention "free" until co-runners exceed
        # spare resources (CPU: spare cores; memory: shared-cache slack).
        self._threshold = np.stack(
            [np.maximum(cores - 1.0, 0.25) * 0.55, 0.25 + 0.06 * cache], axis=1
        )  # (Np, 2)

        # ---------------- failure table ----------------
        # ~2% of (workload, platform) combinations crash (implementation
        # bugs, App C.3); MCU additionally rejects large-footprint jobs.
        crash = rng.random((nw, npf)) < 0.02
        for j, plat in enumerate(platforms):
            if plat.device.is_mcu:
                crash[:, j] |= ws > 14.0
        self.crash_table: np.ndarray = crash

        self._noise_scale = np.array([p.device.noise_scale for p in platforms])

    # ------------------------------------------------------------------
    # True (noise-free) quantities
    # ------------------------------------------------------------------
    def isolation_log10(self, w_idx: np.ndarray, p_idx: np.ndarray) -> np.ndarray:
        """Noise-free isolation log10 runtime for index arrays."""
        return self.log10_isolation[np.asarray(w_idx), np.asarray(p_idx)]

    def interference_log10(
        self,
        w_idx: np.ndarray,
        p_idx: np.ndarray,
        interferers: np.ndarray,
    ) -> np.ndarray:
        """True log10 *slowdown* caused by co-runners.

        Parameters
        ----------
        w_idx, p_idx:
            ``(n,)`` target workload / platform indices.
        interferers:
            ``(n, max_k)`` interferer workload indices, ``-1``-padded.

        For each true contention type ``t``:
        ``slowdown_t = sus[i,t] * scale[j,t] * act(G, τ)`` where
        ``G = Σ_k mag[k,t]``, ``act(G, τ) = max(G − τ, 0) + 0.06 G`` — a
        leaky threshold: a small slowdown leaks through below capacity,
        the bulk appears once co-runners exceed it, and zero interferers
        give exactly zero.
        """
        w_idx = np.asarray(w_idx)
        p_idx = np.asarray(p_idx)
        interferers = np.atleast_2d(np.asarray(interferers))
        valid = interferers >= 0
        safe = np.where(valid, interferers, 0)
        mags = self._mag[safe] * valid[..., None]  # (n, max_k, 2)
        total = mags.sum(axis=1)  # (n, 2)
        over = total - self._threshold[p_idx]
        act = np.maximum(over, 0.0) + 0.06 * total
        sus = self._sus[w_idx] * self._plat_scale[p_idx]
        raw = (sus * act).sum(axis=1)
        # Soft saturation: co-scheduling cannot slow a job indefinitely —
        # the scheduler still shares time — so extremes flatten near ~25x.
        cap = 1.45
        return np.where(raw > 0, cap * np.tanh(raw / cap), raw)

    def true_log10(
        self,
        w_idx: np.ndarray,
        p_idx: np.ndarray,
        interferers: np.ndarray | None = None,
    ) -> np.ndarray:
        """Noise-free log10 runtime including interference."""
        base = self.isolation_log10(w_idx, p_idx)
        if interferers is None:
            return base
        return base + self.interference_log10(w_idx, p_idx, interferers)

    # ------------------------------------------------------------------
    # Measurement model
    # ------------------------------------------------------------------
    def sample_log10(
        self,
        w_idx: np.ndarray,
        p_idx: np.ndarray,
        interferers: np.ndarray | None,
        rng: np.random.Generator,
        averaging_reps: np.ndarray | None = None,
    ) -> np.ndarray:
        """Measured log10 runtime: truth + heteroscedastic noise.

        ``averaging_reps`` models the collection procedure (each benchmark
        repeated up to 50× within 30 s and averaged), shrinking noise by
        ``sqrt(reps)``.
        """
        cfg = self.config
        w_idx = np.asarray(w_idx)
        p_idx = np.asarray(p_idx)
        truth = self.true_log10(w_idx, p_idx, interferers)
        if interferers is None:
            n_int = np.zeros(len(truth))
        else:
            n_int = (np.atleast_2d(interferers) >= 0).sum(axis=1).astype(float)
        sigma = (
            (cfg.noise_base + cfg.noise_per_interferer * n_int)
            * self._noise_scale[p_idx]
        )
        if averaging_reps is not None:
            sigma = sigma / np.sqrt(np.maximum(averaging_reps, 1.0))
        noise = rng.normal(0.0, 1.0, size=truth.shape) * sigma
        # One-sided outliers (a straggler repetition drags the mean up).
        out_p = cfg.outlier_prob * (1.0 + n_int)
        outlier = (rng.random(truth.shape) < out_p) * rng.uniform(
            0.0, cfg.outlier_max, size=truth.shape
        )
        return truth + noise + outlier

    def sample_runtime(
        self,
        w_idx: np.ndarray,
        p_idx: np.ndarray,
        interferers: np.ndarray | None,
        rng: np.random.Generator,
        averaging_reps: np.ndarray | None = None,
    ) -> np.ndarray:
        """Measured runtime in seconds."""
        return 10.0 ** self.sample_log10(
            w_idx, p_idx, interferers, rng, averaging_reps
        )
