"""Staged, cached pipeline from scenario spec to calibrated serving.

``run_pipeline("paper")`` executes the typed stage DAG
``collect → scale → train → calibrate → evaluate → snapshot`` and returns
a :class:`PipelineResult` exposing the dataset, split, fitted trainer,
calibrated :class:`~repro.conformal.ConformalRuntimePredictor`,
:class:`~repro.core.EmbeddingSnapshot`, and metrics. With an
:class:`ArtifactStore`, every stage is persisted content-addressed on
(spec components read, upstream keys), so warm re-runs execute zero
stages and spec edits re-run only the affected suffix.
"""

from .artifacts import ArtifactStore, stage_key
from .stages import (
    PIPELINE_STAGES,
    LifecycleArtifact,
    PipelineResult,
    StageDef,
    calibrate_stage,
    collect_stage,
    evaluate_stage,
    ingest_stage,
    make_scenario_split,
    pipeline_stage_keys,
    recalibrate_stage,
    run_pipeline,
    scale_stage,
    simulate_stage,
    snapshot_stage,
    stage_closure,
    train_stage,
    update_stage,
)

__all__ = [
    "ArtifactStore",
    "stage_key",
    "StageDef",
    "PIPELINE_STAGES",
    "PipelineResult",
    "LifecycleArtifact",
    "run_pipeline",
    "pipeline_stage_keys",
    "collect_stage",
    "scale_stage",
    "train_stage",
    "calibrate_stage",
    "evaluate_stage",
    "snapshot_stage",
    "ingest_stage",
    "update_stage",
    "recalibrate_stage",
    "simulate_stage",
    "stage_closure",
    "make_scenario_split",
]
