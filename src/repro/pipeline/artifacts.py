"""Content-addressed artifact store for pipeline stages.

Every stage's output is keyed on the hash of (the spec components the
stage reads, the stage name, the upstream stage keys, and the artifact
schema version). Equal keys therefore mean "this exact computation
already ran" — re-running a pipeline, or running a second pipeline that
shares a prefix (same fleet, different trainer), loads the shared stages
instead of recomputing them.

Layout on disk::

    <root>/<stage>/<key[:24]>/         # one directory per artifact
        ...stage files...              # written by the stage's saver
        MANIFEST.json                  # written last: commit marker
    <root>/.locks/<stage>-<key[:24]>.lock   # per-artifact writer locks

The manifest is the commit point, published atomically (temp file +
``os.replace``): a crashed run leaves a directory without one, which
reads as a miss and is overwritten by the next run — a torn half-written
manifest can never read as committed.

Concurrency protocol (used by ``run_pipeline`` and ``repro.sweep``):
writers take :meth:`ArtifactStore.lock` on ``(stage, key)`` before
touching the artifact directory, then re-check :meth:`has` under the
lock — the loser of a race loads the winner's commit instead of
recomputing. Readers never lock: a committed manifest is immutable.
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import shutil
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["ArtifactStore", "StoreEntry", "stage_key"]

#: Bump when any stage's on-disk artifact layout changes; folded into
#: every stage key so old caches read as misses, never as garbage.
ARTIFACT_SCHEMA_VERSION = 1

_MANIFEST = "MANIFEST.json"
_LOCK_DIR = ".locks"


def stage_key(stage: str, spec_excerpt_hash: str, upstream: tuple[str, ...]) -> str:
    """Cache key for one stage run (hex sha256).

    ``spec_excerpt_hash`` covers exactly the spec components the stage
    reads (:meth:`ScenarioSpec.component_hash`); ``upstream`` chains the
    keys of the stage's declared inputs, so an invalidated input
    transitively invalidates everything downstream.
    """
    payload = json.dumps(
        {
            "artifact_schema": ARTIFACT_SCHEMA_VERSION,
            "stage": stage,
            "spec": spec_excerpt_hash,
            "upstream": list(upstream),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class StoreEntry:
    """One artifact directory as seen by ``store ls`` / ``store gc``."""

    __slots__ = ("stage", "key_prefix", "committed", "n_files", "n_bytes", "meta")

    def __init__(
        self,
        stage: str,
        key_prefix: str,
        committed: bool,
        n_files: int,
        n_bytes: int,
        meta: dict,
    ) -> None:
        self.stage = stage
        self.key_prefix = key_prefix
        self.committed = committed
        self.n_files = n_files
        self.n_bytes = n_bytes
        self.meta = meta


class ArtifactStore:
    """Filesystem-backed, content-addressed stage cache."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def _dir(self, stage: str, key: str) -> Path:
        return self.root / stage / key[:24]

    def _lock_path(self, stage: str, key: str) -> Path:
        return self.root / _LOCK_DIR / f"{stage}-{key[:24]}.lock"

    def has(self, stage: str, key: str) -> bool:
        """True when a committed artifact exists for ``(stage, key)``."""
        return (self._dir(stage, key) / _MANIFEST).exists()

    def read_dir(self, stage: str, key: str) -> Path:
        """Directory of a committed artifact; raises on a miss."""
        path = self._dir(stage, key)
        if not (path / _MANIFEST).exists():
            raise KeyError(f"no committed artifact for {stage}/{key[:24]}")
        return path

    def manifest(self, stage: str, key: str) -> dict:
        """The committed artifact's manifest (provenance metadata)."""
        return json.loads(
            (self.read_dir(stage, key) / _MANIFEST).read_text()
        )

    # ------------------------------------------------------------------
    @contextmanager
    def lock(self, stage: str, key: str) -> Iterator[None]:
        """Exclusive per-artifact writer lock (blocking ``flock``).

        Concurrent producers of the same ``(stage, key)`` serialize
        here; the protocol is double-checked locking — re-test
        :meth:`has` after acquiring, because the previous holder may
        have committed the artifact while this process waited.
        """
        lock_path = self._lock_path(stage, key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # ------------------------------------------------------------------
    def write_dir(self, stage: str, key: str) -> Path:
        """Fresh (emptied) directory to write a new artifact into.

        Any partial leftovers from a crashed run are discarded; the
        artifact only becomes visible once :meth:`commit` writes the
        manifest.
        """
        path = self._dir(stage, key)
        if path.exists():
            shutil.rmtree(path)
        path.mkdir(parents=True)
        return path

    def commit(self, stage: str, key: str, meta: dict | None = None) -> None:
        """Atomically publish the artifact written under ``(stage, key)``.

        The manifest lands via temp file + ``os.replace`` so a crash
        mid-write can never leave a truncated ``MANIFEST.json`` that
        reads as committed.
        """
        path = self._dir(stage, key)
        manifest = {
            "stage": stage,
            "key": key,
            "artifact_schema": ARTIFACT_SCHEMA_VERSION,
            **(meta or {}),
        }
        tmp = path / f"{_MANIFEST}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp, path / _MANIFEST)

    # ------------------------------------------------------------------
    def stage_entries(self) -> dict[str, int]:
        """Committed artifact count per stage (observability/tests)."""
        counts: dict[str, int] = {}
        if not self.root.exists():
            return counts
        for stage_dir in sorted(self.root.iterdir()):
            if stage_dir.is_dir() and stage_dir.name != _LOCK_DIR:
                counts[stage_dir.name] = sum(
                    1
                    for entry in stage_dir.iterdir()
                    if (entry / _MANIFEST).exists()
                )
        return counts

    def entries(self) -> list[StoreEntry]:
        """Every artifact directory, committed or partial (``store ls``)."""
        found: list[StoreEntry] = []
        if not self.root.exists():
            return found
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir() or stage_dir.name == _LOCK_DIR:
                continue
            for entry in sorted(stage_dir.iterdir()):
                if not entry.is_dir():
                    continue
                files = [p for p in entry.rglob("*") if p.is_file()]
                manifest_path = entry / _MANIFEST
                committed = manifest_path.exists()
                meta: dict = {}
                if committed:
                    try:
                        meta = json.loads(manifest_path.read_text())
                    except ValueError:
                        # Unreachable with atomic commit; stay listable
                        # if an old store carries a torn manifest.
                        committed = False
                found.append(
                    StoreEntry(
                        stage=stage_dir.name,
                        key_prefix=entry.name,
                        committed=committed,
                        n_files=len(files),
                        n_bytes=sum(p.stat().st_size for p in files),
                        meta=meta,
                    )
                )
        return found

    def uncommitted(self) -> list[tuple[str, str]]:
        """``(stage, key_prefix)`` of partial dirs left by crashed runs."""
        return [
            (entry.stage, entry.key_prefix)
            for entry in self.entries()
            if not entry.committed
        ]

    def gc(self) -> list[tuple[str, str]]:
        """Prune uncommitted partial directories; return what was removed.

        A partial dir whose writer lock is currently held belongs to a
        live in-flight run and is skipped — only leftovers from crashed
        runs (lock free, no manifest) are deleted. Freed lockfiles are
        removed opportunistically.
        """
        removed: list[tuple[str, str]] = []
        for stage, key_prefix in self.uncommitted():
            lock_path = self._lock_path(stage, key_prefix)
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    continue  # live writer: leave its partial dir alone
                shutil.rmtree(self.root / stage / key_prefix)
                removed.append((stage, key_prefix))
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        lock_dir = self.root / _LOCK_DIR
        if lock_dir.exists():
            for lock_path in lock_dir.iterdir():
                fd = os.open(lock_path, os.O_RDWR)
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    continue
                finally:
                    os.close(fd)
                lock_path.unlink(missing_ok=True)
        return removed
