"""Content-addressed artifact store for pipeline stages.

Every stage's output is keyed on the hash of (the spec components the
stage reads, the stage name, the upstream stage keys, and the artifact
schema version). Equal keys therefore mean "this exact computation
already ran" — re-running a pipeline, or running a second pipeline that
shares a prefix (same fleet, different trainer), loads the shared stages
instead of recomputing them.

Layout on disk::

    <root>/<stage>/<key[:24]>/         # one directory per artifact
        ...stage files...              # written by the stage's saver
        MANIFEST.json                  # written last: commit marker

The manifest is the commit point: a crashed run leaves a directory
without one, which reads as a miss and is overwritten by the next run.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from pathlib import Path

__all__ = ["ArtifactStore", "stage_key"]

#: Bump when any stage's on-disk artifact layout changes; folded into
#: every stage key so old caches read as misses, never as garbage.
ARTIFACT_SCHEMA_VERSION = 1

_MANIFEST = "MANIFEST.json"


def stage_key(stage: str, spec_excerpt_hash: str, upstream: tuple[str, ...]) -> str:
    """Cache key for one stage run (hex sha256).

    ``spec_excerpt_hash`` covers exactly the spec components the stage
    reads (:meth:`ScenarioSpec.component_hash`); ``upstream`` chains the
    keys of the stage's declared inputs, so an invalidated input
    transitively invalidates everything downstream.
    """
    payload = json.dumps(
        {
            "artifact_schema": ARTIFACT_SCHEMA_VERSION,
            "stage": stage,
            "spec": spec_excerpt_hash,
            "upstream": list(upstream),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Filesystem-backed, content-addressed stage cache."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def _dir(self, stage: str, key: str) -> Path:
        return self.root / stage / key[:24]

    def has(self, stage: str, key: str) -> bool:
        """True when a committed artifact exists for ``(stage, key)``."""
        return (self._dir(stage, key) / _MANIFEST).exists()

    def read_dir(self, stage: str, key: str) -> Path:
        """Directory of a committed artifact; raises on a miss."""
        path = self._dir(stage, key)
        if not (path / _MANIFEST).exists():
            raise KeyError(f"no committed artifact for {stage}/{key[:24]}")
        return path

    def manifest(self, stage: str, key: str) -> dict:
        """The committed artifact's manifest (provenance metadata)."""
        return json.loads(
            (self.read_dir(stage, key) / _MANIFEST).read_text()
        )

    # ------------------------------------------------------------------
    def write_dir(self, stage: str, key: str) -> Path:
        """Fresh (emptied) directory to write a new artifact into.

        Any partial leftovers from a crashed run are discarded; the
        artifact only becomes visible once :meth:`commit` writes the
        manifest.
        """
        path = self._dir(stage, key)
        if path.exists():
            shutil.rmtree(path)
        path.mkdir(parents=True)
        return path

    def commit(self, stage: str, key: str, meta: dict | None = None) -> None:
        """Publish the artifact written under ``(stage, key)``."""
        path = self._dir(stage, key)
        manifest = {
            "stage": stage,
            "key": key,
            "artifact_schema": ARTIFACT_SCHEMA_VERSION,
            **(meta or {}),
        }
        (path / _MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")

    # ------------------------------------------------------------------
    def stage_entries(self) -> dict[str, int]:
        """Committed artifact count per stage (observability/tests)."""
        counts: dict[str, int] = {}
        if not self.root.exists():
            return counts
        for stage_dir in sorted(self.root.iterdir()):
            if stage_dir.is_dir():
                counts[stage_dir.name] = sum(
                    1
                    for entry in stage_dir.iterdir()
                    if (entry / _MANIFEST).exists()
                )
        return counts
