"""The staged pipeline: ``collect → scale → train → calibrate → evaluate
→ snapshot``.

One :class:`~repro.scenarios.ScenarioSpec` drives the whole path the
paper's Sec 5.1 protocol describes (and ``cli.py``, the benchmarks, and
the integration tests used to re-implement by hand):

* **collect** — build the fleet and run the campaign → `RuntimeDataset`;
* **scale** — draw the replicate split and fit the linear-scaling
  baseline (App B.1) → `DataSplit` + `LinearScalingBaseline`;
* **train** — fit Pitot under the spec's architecture/optimizer →
  `TrainingResult`;
* **calibrate** — conformalize on the calibration hold-out →
  `ConformalRuntimePredictor`;
* **evaluate** — MAPE / coverage / margin on test → metrics dict;
* **snapshot** — freeze serving embeddings → `EmbeddingSnapshot`.

Scenarios with a drift stream (``spec.drift.enabled``) extend the DAG
with the continual-learning suffix (run via ``stop_after="recalibrate"``
or the ``repro lifecycle run`` command; the default ``snapshot`` stop
leaves them untouched):

* **ingest** — build the spec's :class:`~repro.lifecycle.DriftTrace`;
* **update** — replay the trace through the continual loop
  (:func:`~repro.lifecycle.run_lifecycle`): streaming ingestion,
  warm-start updates, rolling recalibration, atomic swaps → the updated
  model checkpoint, the coverage-over-time report, and the final rolling
  window (content-addressed like every other artifact);
* **recalibrate** — the final promotion: rebuild the conformal layer
  from the persisted window against the updated model → a serving-ready
  `ConformalRuntimePredictor`.

Scenarios with a scheduling simulation (``spec.scheduling.enabled``)
add a final **simulate** stage: the event-driven cluster simulator
(:mod:`repro.orchestration.simulator`) plays the spec's job stream
against two schedulers sharing one world-calibrated starting point —
one backed by a live :class:`~repro.lifecycle.LifecycleManager`
(observations ingested, budgets recalibrated and promoted online), one
frozen — and emits a :class:`~repro.orchestration.ScheduleReport`
artifact of per-epoch placement/violation/utilization metrics. Reach it
with ``stop_after="simulate", needed_only=True`` (the ``repro schedule
run`` path), which runs only the stage's ancestor closure — the
lifecycle replay stages are not prerequisites, so drift-free scheduling
scenarios work too.

Each stage declares which spec components it reads and which upstream
stages it consumes; :func:`run_pipeline` keys every stage's artifact on
exactly that (see :mod:`repro.pipeline.artifacts`), so a warm re-run
executes zero stages and a spec edit re-runs only the affected suffix.

The stage functions are plain and public — the CLI calls them directly
for its one-off ``collect``/``train``/``evaluate`` commands — and every
one is deterministic in (spec, inputs): the cached and freshly-computed
paths are bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..cluster.collection import (
    ClusterCollector,
    make_cluster,
    synthetic_fleet_dataset,
)
from ..cluster.dataset import RuntimeDataset, check_schema_version
from ..cluster.splits import DataSplit, make_cold_workload_split, make_split
from ..conformal.margins import MarginParams
from ..conformal.predictor import ConformalRuntimePredictor, HeadChoice
from ..core.model import EmbeddingSnapshot, PitotModel
from ..core.scaling import LinearScalingBaseline
from ..core.serialization import load_model, save_model
from ..core.trainer import PitotTrainer, TrainingResult, train_pitot
from ..eval.metrics import coverage, mape, overprovision_margin
from ..lifecycle.manager import LifecycleManager, run_lifecycle
from ..lifecycle.trace import DriftTrace, make_drift_trace
from ..scenarios.registry import get_scenario

if TYPE_CHECKING:  # deferred: serving imports pipeline artifacts
    from ..serving.service import PredictionService
from ..scenarios.spec import ScenarioSpec
from .artifacts import ArtifactStore, stage_key

__all__ = [
    "StageDef",
    "PIPELINE_STAGES",
    "PipelineResult",
    "LifecycleArtifact",
    "run_pipeline",
    "pipeline_stage_keys",
    "collect_stage",
    "scale_stage",
    "train_stage",
    "calibrate_stage",
    "evaluate_stage",
    "snapshot_stage",
    "ingest_stage",
    "update_stage",
    "recalibrate_stage",
    "simulate_stage",
    "stage_closure",
    "make_scenario_split",
]

#: Split-artifact npz schema (independent of the dataset schema).
_SPLIT_SCHEMA_VERSION = 1
_SNAPSHOT_SCHEMA_VERSION = 1
_WINDOW_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class StageDef:
    """One pipeline stage's contract.

    ``spec_components`` are the :class:`ScenarioSpec` parts whose content
    feeds the stage's cache key; ``inputs`` are upstream stage names whose
    keys are chained in. ``provides`` names the :class:`PipelineResult`
    attributes the stage fills.
    """

    name: str
    inputs: tuple[str, ...]
    spec_components: tuple[str, ...]
    provides: tuple[str, ...]


#: The typed stage DAG, in execution order.
PIPELINE_STAGES: tuple[StageDef, ...] = (
    StageDef(
        "collect",
        inputs=(),
        spec_components=("fleet", "collection", "performance", "seeds.collect"),
        provides=("dataset",),
    ),
    StageDef(
        "scale",
        inputs=("collect",),
        spec_components=("split", "seeds.split"),
        provides=("split", "baseline"),
    ),
    StageDef(
        "train",
        inputs=("scale",),
        spec_components=(
            "model",
            "trainer",
            "seeds.train",
            "seeds.model_init",
        ),
        provides=("training",),
    ),
    StageDef(
        "calibrate",
        inputs=("train",),
        spec_components=("conformal",),
        provides=("predictor",),
    ),
    StageDef(
        "evaluate",
        inputs=("calibrate",),
        spec_components=(),
        provides=("metrics",),
    ),
    StageDef(
        "snapshot",
        inputs=("train",),
        spec_components=(),
        provides=("snapshot",),
    ),
    # ------------------------------------------------------------------
    # Continual-learning suffix (drift scenarios; default stop_after =
    # "snapshot" leaves these inert).
    # ------------------------------------------------------------------
    StageDef(
        "ingest",
        inputs=("collect",),
        spec_components=("drift", "seeds.drift"),
        provides=("trace",),
    ),
    StageDef(
        "update",
        # The replay loop serves with the calibrated predictor, trains
        # with the trainer policy, and recalibrates at the conformal ε
        # grid, so all three components feed the checkpoint's key.
        inputs=("calibrate", "ingest"),
        spec_components=("drift", "trainer", "conformal", "seeds.drift"),
        provides=("lifecycle",),
    ),
    StageDef(
        "recalibrate",
        inputs=("update",),
        spec_components=("conformal",),
        provides=("recalibrated",),
    ),
    # ------------------------------------------------------------------
    # Fleet-scheduler suffix (scheduling scenarios; reached via
    # stop_after="simulate", usually with needed_only=True so the
    # lifecycle replay stages above are not forced to run).
    # ------------------------------------------------------------------
    StageDef(
        "simulate",
        # The simulation rebuilds its own (world-calibrated) conformal
        # layer from the trained model, so it consumes no calibrate
        # *artifact* — the input keeps the batch-calibration lineage in
        # the cache key, since both apply the same ConformalSpec policy.
        # The scheduler, drift, trainer (warm updates), and conformal
        # (recalibration grid) components all shape the run.
        inputs=("calibrate",),
        spec_components=(
            "scheduling",
            "drift",
            "trainer",
            "conformal",
            "seeds.schedule",
        ),
        provides=("schedule",),
    ),
)

_STAGE_BY_NAME = {stage.name: stage for stage in PIPELINE_STAGES}


# ----------------------------------------------------------------------
# Stage implementations (pure functions of spec + upstream values)
# ----------------------------------------------------------------------
def collect_stage(spec: ScenarioSpec) -> RuntimeDataset:
    """Build the spec's fleet and run the collection campaign."""
    fleet = spec.fleet
    if fleet.synthetic:
        return synthetic_fleet_dataset(
            n_workloads=fleet.n_workloads,
            n_platforms=fleet.n_platforms,
            n_observations=fleet.n_observations,
            seed=spec.seeds.collect,
        )
    model = make_cluster(
        seed=spec.seeds.collect,
        n_workloads=fleet.n_workloads,
        n_devices=fleet.n_devices,
        n_runtimes=fleet.n_runtimes,
        performance_config=spec.performance,
    )
    collector = ClusterCollector(model, spec.collection)
    return collector.collect(np.random.default_rng(spec.seeds.collect + 1))


def make_scenario_split(
    spec: ScenarioSpec,
    dataset: RuntimeDataset,
    train_fraction: float | None = None,
    seed: int | None = None,
) -> DataSplit:
    """Draw one split under the spec's holdout policy.

    ``train_fraction`` / ``seed`` overrides support the replicate
    protocol (experiment harnesses sweep fractions and seeds over one
    scenario).
    """
    fraction = (
        spec.split.train_fraction if train_fraction is None else train_fraction
    )
    seed = spec.seeds.split if seed is None else seed
    if spec.split.holdout == "cold-workload":
        return make_cold_workload_split(
            dataset,
            fraction,
            seed=seed,
            calibration_fraction=spec.split.calibration_fraction,
            holdout_fraction=spec.split.holdout_fraction,
        )
    return make_split(
        dataset,
        fraction,
        seed=seed,
        calibration_fraction=spec.split.calibration_fraction,
    )


def scale_stage(
    spec: ScenarioSpec, dataset: RuntimeDataset
) -> tuple[DataSplit, LinearScalingBaseline]:
    """Split the dataset and fit the linear-scaling baseline (App B.1).

    The baseline is fit exactly as the trainer fits it (isolation rows of
    the training part, all-rows fallback), so the artifact doubles as the
    standalone Sec 3.2 predictor for this split.
    """
    split = make_scenario_split(spec, dataset)
    baseline = LinearScalingBaseline(dataset.n_workloads, dataset.n_platforms)
    train = split.train
    iso = train.isolation_mask()
    baseline.fit(
        train.w_idx[iso],
        train.p_idx[iso],
        train.log_runtime[iso],
        fallback=(train.w_idx, train.p_idx, train.log_runtime),
    )
    return split, baseline


def train_stage(spec: ScenarioSpec, split: DataSplit) -> TrainingResult:
    """Fit Pitot on the split under the spec's architecture/optimizer.

    ``spec.trainer.seed`` already mirrors ``seeds.train`` (enforced by
    ``ScenarioSpec.__post_init__``).
    """
    return train_pitot(
        split.train,
        split.calibration,
        model_config=spec.model,
        trainer_config=spec.trainer,
        seed=spec.seeds.model_init,
    )


def _spec_predictor(
    spec: ScenarioSpec, model: PitotModel
) -> ConformalRuntimePredictor:
    """Uncalibrated predictor configured from the spec's conformal knobs.

    Resolves the ``None`` auto-strategy ("pitot" for quantile models,
    "split" for point predictors) and the margin-engine parameters in one
    place so calibrate/recalibrate/simulate cannot drift apart.
    """
    quantiles = model.config.quantiles
    strategy = spec.conformal.strategy
    if strategy is None:
        strategy = "pitot" if quantiles else "split"
    return ConformalRuntimePredictor(
        model,
        quantiles=quantiles,
        strategy=strategy,
        use_pools=spec.conformal.use_pools,
        margin=MarginParams.from_conformal_spec(spec.conformal),
    )


def calibrate_stage(
    spec: ScenarioSpec, model: PitotModel, split: DataSplit
) -> ConformalRuntimePredictor:
    """Split-calibrate the trained model at the spec's ε grid."""
    predictor = _spec_predictor(spec, model)
    return predictor.calibrate(
        split.calibration, epsilons=spec.conformal.epsilons
    )


def evaluate_stage(
    spec: ScenarioSpec,
    training: TrainingResult,
    predictor: ConformalRuntimePredictor,
    split: DataSplit,
) -> dict:
    """Sec 5.1 test metrics: MAPE by interference, coverage/margin per ε."""
    test = split.test
    model = training.model
    # The scenario *name* is provenance, not content — it lives in the
    # artifact manifest, never in the cached payload, so a same-knob
    # scenario alias hitting this cache is not mislabeled.
    metrics: dict = {
        "n_train": split.n_train,
        "n_calibration": split.n_calibration,
        "n_test": split.n_test,
        "steps_run": training.steps_run,
        "best_step": training.best_step,
        "best_val_loss": (
            training.best_val_loss
            if np.isfinite(training.best_val_loss)
            else None
        ),
        "final_train_loss": (
            training.train_loss_history[-1]
            if training.train_loss_history
            else None
        ),
    }
    pred = model.predict_runtime(test.w_idx, test.p_idx, test.interferers)
    iso = test.isolation_mask()
    # ``None`` (JSON null), not NaN, for empty partitions: metrics.json
    # must stay strict JSON for non-Python consumers of the store.
    metrics["mape_isolation"] = (
        float(mape(pred[iso], test.runtime[iso])) if iso.any() else None
    )
    metrics["mape_interference"] = (
        float(mape(pred[~iso], test.runtime[~iso])) if (~iso).any() else None
    )
    by_epsilon: dict[str, dict[str, float]] = {}
    for eps in spec.conformal.epsilons:
        bound = predictor.predict_bound_dataset(test, eps)
        by_epsilon[repr(float(eps))] = {
            "coverage": float(coverage(bound, test.runtime)),
            "margin": float(overprovision_margin(bound, test.runtime)),
        }
    metrics["epsilons"] = by_epsilon
    return metrics


def snapshot_stage(model: PitotModel) -> EmbeddingSnapshot:
    """Freeze the trained towers into the serving-side snapshot."""
    return EmbeddingSnapshot.from_model(model)


@dataclass
class LifecycleArtifact:
    """The ``update`` stage's checkpoint: everything the continual loop
    produced that downstream stages (and the CLI report) need.

    ``window`` is the final rolling window as dataset-shaped arrays
    ``(w_idx, p_idx, interferers, runtime)`` — the recalibrate stage
    re-derives the final conformal layer from it deterministically.
    """

    model: PitotModel  #: the warm-updated model checkpoint
    ticks: list[dict]  #: coverage-over-time rows (LifecycleTick.as_dict)
    update_loss_history: list[float]
    update_steps: int
    window: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def ingest_stage(spec: ScenarioSpec, dataset: RuntimeDataset) -> DriftTrace:
    """Build the spec's post-deployment drift trace."""
    return make_drift_trace(spec, dataset)


def simulate_stage(
    spec: ScenarioSpec,
    dataset: RuntimeDataset,
    training: TrainingResult,
) -> "ScheduleReport":
    """Play the spec's scheduling simulation: adaptive vs static.

    Both schedulers start from one *world-calibrated* conformal layer
    (so epoch 0 is honest ε-coverage against the simulator's surrogate
    ground truth); the adaptive run then feeds its completions through a
    live :class:`~repro.lifecycle.LifecycleManager` while the static run
    keeps quoting the frozen generation. Raises when the spec has no
    scheduling simulation (``scheduling.enabled`` is false) — the stage
    must fail loudly on batch scenarios rather than simulate an empty
    horizon.
    """
    from ..lifecycle.manager import LifecycleManager
    from ..orchestration.simulator import (
        ClusterSimulator,
        FleetWorld,
        build_schedule_report,
        epoch_multipliers,
        world_calibration_window,
    )
    from ..serving.service import PredictionService

    sched = spec.scheduling
    if not sched.enabled:
        raise ValueError(
            f"scenario {spec.name!r} defines no scheduling simulation "
            f"(scheduling.enabled is false); the simulate stage needs one"
        )
    world = FleetWorld.from_dataset(dataset)
    multipliers = epoch_multipliers(spec.drift, sched.epochs)

    window = world_calibration_window(
        world, dataset, sched.warmup_events, multipliers[0],
        seed=spec.seeds.schedule + 101,
    )
    model = training.model

    def world_calibrated(bound_model: PitotModel) -> ConformalRuntimePredictor:
        return _spec_predictor(spec, bound_model).calibrate(
            window, epsilons=spec.conformal.epsilons
        )

    epsilon = float(spec.conformal.epsilons[0])
    drift = spec.drift

    # Adaptive: a live lifecycle around a clone of the trained model.
    owned = model.clone()
    manager = LifecycleManager(
        owned,
        world_calibrated(owned),
        features_from=dataset,
        trainer_config=spec.trainer,
        window=drift.window if drift.enabled else 4 * sched.warmup_events,
        epsilons=spec.conformal.epsilons,
    )
    # The warmup window doubles as the deployment's observation history:
    # pre-drift recalibrations draw from thousands of rows instead of a
    # couple of epochs' completions, and only a change-point reset
    # shrinks the window back to the fresh regime.
    manager.buffer.ingest_dataset(window)
    adaptive = ClusterSimulator(
        world,
        None,
        sched,
        epsilon=epsilon,
        multipliers=multipliers,
        seed=spec.seeds.schedule,
        lifecycle=manager,
        update_steps=drift.update_steps if drift.enabled else 100,
        reset_miscoverage=drift.reset_miscoverage if drift.enabled else None,
        probe_source=dataset,
    ).run()

    # Static: the same starting generation, never recalibrated.
    base = world_calibrated(model)
    static_service = PredictionService(
        EmbeddingSnapshot.from_model(model),
        choices=base.choices,
        use_pools=base.use_pools,
    )
    static_sim = ClusterSimulator(
        world,
        static_service,
        sched,
        epsilon=epsilon,
        multipliers=multipliers,
        seed=spec.seeds.schedule,
    )
    static = static_sim.run()
    return build_schedule_report(
        spec.name, adaptive, static, multipliers, world.n_platforms,
        static_sim.epoch_seconds,
    )


def update_stage(
    spec: ScenarioSpec,
    dataset: RuntimeDataset,
    training: TrainingResult,
    predictor: ConformalRuntimePredictor,
    trace: DriftTrace,
) -> LifecycleArtifact:
    """Replay the trace through the continual loop (see
    :func:`repro.lifecycle.run_lifecycle`).

    The trained model is cloned inside the loop, so the cached ``train``
    artifact this stage consumes is never mutated.
    """
    lc = run_lifecycle(spec, dataset, training.model, predictor, trace=trace)
    return LifecycleArtifact(
        model=lc.model,
        ticks=[tick.as_dict() for tick in lc.ticks],
        update_loss_history=lc.update_loss_history,
        update_steps=lc.update_steps,
        window=lc.buffer.window_rows(),
    )


def recalibrate_stage(
    spec: ScenarioSpec,
    lifecycle: LifecycleArtifact,
    dataset: RuntimeDataset,
) -> ConformalRuntimePredictor:
    """The final promotion: conformal layer from the persisted window.

    Applies the same interleaved calibration hold-out the lifecycle
    manager used (``LifecycleManager.CALIBRATION_MODULUS``), so when the
    replay's last tick promoted, this predictor reproduces the final
    in-loop recalibration bit-for-bit — and when it did not (leftover
    ticks under ``update_every`` > 1), this stage *is* the freshest
    possible promotion over the full window.
    """
    model = lifecycle.model
    w, p, interferers, runtime = lifecycle.window
    window = RuntimeDataset(
        w_idx=w,
        p_idx=p,
        interferers=interferers,
        runtime=runtime,
        workload_features=dataset.workload_features,
        platform_features=dataset.platform_features,
    )
    _, calibration = LifecycleManager.split_window(window)
    predictor = _spec_predictor(spec, model)
    return predictor.calibrate(
        calibration,
        epsilons=spec.conformal.epsilons,
        arrivals=LifecycleManager.calibration_rows(window.n_observations),
    )


# ----------------------------------------------------------------------
# Stage persistence (artifact directory ↔ in-memory value)
# ----------------------------------------------------------------------
def _save_collect(path: Path, out: dict) -> None:
    out["dataset"].save(path / "dataset.npz")


def _load_collect(path: Path, spec: ScenarioSpec, out: dict) -> None:
    out["dataset"] = RuntimeDataset.load(path / "dataset.npz")


def _save_scale(path: Path, out: dict) -> None:
    split: DataSplit = out["split"]
    baseline: LinearScalingBaseline = out["baseline"]
    np.savez_compressed(
        path / "split.npz",
        schema_version=np.array(_SPLIT_SCHEMA_VERSION),
        train_rows=split.train_rows,
        calibration_rows=split.calibration_rows,
        test_rows=split.test_rows,
        train_fraction=np.array(split.train_fraction),
        seed=np.array(split.seed),
        w_bar=baseline.w_bar,
        p_bar=baseline.p_bar,
    )


def _load_scale(path: Path, spec: ScenarioSpec, out: dict) -> None:
    dataset: RuntimeDataset = out["dataset"]
    with np.load(path / "split.npz") as archive:
        check_schema_version(
            archive, _SPLIT_SCHEMA_VERSION, "split", path / "split.npz"
        )
        out["split"] = DataSplit.from_rows(
            dataset,
            train_rows=archive["train_rows"],
            calibration_rows=archive["calibration_rows"],
            test_rows=archive["test_rows"],
            train_fraction=float(archive["train_fraction"]),
            seed=int(archive["seed"]),
        )
        out["baseline"] = LinearScalingBaseline.from_parameters(
            archive["w_bar"], archive["p_bar"]
        )


def _save_train(path: Path, out: dict) -> None:
    training: TrainingResult = out["training"]
    save_model(training.model, path / "model.npz")
    (path / "training.json").write_text(
        json.dumps(
            {
                "train_loss_history": training.train_loss_history,
                "val_loss_history": [
                    [step, loss] for step, loss in training.val_loss_history
                ],
                "best_val_loss": training.best_val_loss,
                "best_step": training.best_step,
                "steps_run": training.steps_run,
            }
        )
        + "\n"
    )


def _load_train(path: Path, spec: ScenarioSpec, out: dict) -> None:
    model = load_model(path / "model.npz")
    history = json.loads((path / "training.json").read_text())
    out["training"] = TrainingResult(
        model=model,
        train_loss_history=[float(v) for v in history["train_loss_history"]],
        val_loss_history=[
            (int(step), float(loss))
            for step, loss in history["val_loss_history"]
        ],
        best_val_loss=float(history["best_val_loss"]),
        best_step=int(history["best_step"]),
        steps_run=int(history["steps_run"]),
    )


def _write_predictor_json(path: Path, predictor: ConformalRuntimePredictor) -> None:
    """Persist a calibrated predictor's conformal layer (model excluded)."""
    path.write_text(
        json.dumps(
            {
                "strategy": predictor.strategy,
                "use_pools": predictor.use_pools,
                "quantiles": predictor.quantiles,
                "margin": {
                    "mode": predictor.margin.mode,
                    "tau": predictor.margin.tau,
                    "n_bootstrap": predictor.margin.n_bootstrap,
                    "clip": predictor.margin.clip,
                    "seed": predictor.margin.seed,
                },
                "epsilons": predictor._calibrated_epsilons,
                "choices": [
                    {
                        "epsilon": eps,
                        "pool": pool,
                        "head": choice.head,
                        "offset": choice.offset,
                    }
                    for (eps, pool), choice in predictor.choices.items()
                ],
            }
        )
        + "\n"
    )


def _read_predictor_json(path: Path, model: PitotModel) -> ConformalRuntimePredictor:
    """Rebuild a calibrated predictor around ``model`` from its JSON."""
    payload = json.loads(path.read_text())
    quantiles = payload["quantiles"]
    margin = payload.get("margin")
    predictor = ConformalRuntimePredictor(
        model,
        quantiles=None if quantiles is None else tuple(quantiles),
        strategy=payload["strategy"],
        use_pools=payload["use_pools"],
        margin=MarginParams(**margin) if margin else "naive",
    )
    predictor.choices = {
        (float(rec["epsilon"]), int(rec["pool"])): HeadChoice(
            head=int(rec["head"]), offset=float(rec["offset"])
        )
        for rec in payload["choices"]
    }
    predictor._calibrated_epsilons = [float(e) for e in payload["epsilons"]]
    return predictor


def _save_calibrate(path: Path, out: dict) -> None:
    _write_predictor_json(path / "calibration.json", out["predictor"])


def _load_calibrate(path: Path, spec: ScenarioSpec, out: dict) -> None:
    out["predictor"] = _read_predictor_json(
        path / "calibration.json", out["training"].model
    )


def _save_evaluate(path: Path, out: dict) -> None:
    # allow_nan=False keeps the artifact strict JSON (jq/CI-readable);
    # evaluate_stage emits None, never NaN/inf, for undefined metrics.
    (path / "metrics.json").write_text(
        json.dumps(out["metrics"], indent=2, allow_nan=False) + "\n"
    )


def _load_evaluate(path: Path, spec: ScenarioSpec, out: dict) -> None:
    out["metrics"] = json.loads((path / "metrics.json").read_text())


def _save_snapshot(path: Path, out: dict) -> None:
    snapshot: EmbeddingSnapshot = out["snapshot"]
    arrays = {
        "schema_version": np.array(_SNAPSHOT_SCHEMA_VERSION),
        "W": snapshot.W,
        "P": snapshot.P,
    }
    for name in ("VS", "VG", "baseline_w", "baseline_p"):
        value = getattr(snapshot, name)
        if value is not None:
            arrays[name] = value
    np.savez_compressed(path / "snapshot.npz", **arrays)


def _load_snapshot(path: Path, spec: ScenarioSpec, out: dict) -> None:
    model: PitotModel = out["training"].model
    with np.load(path / "snapshot.npz") as archive:
        check_schema_version(
            archive, _SNAPSHOT_SCHEMA_VERSION, "snapshot", path / "snapshot.npz"
        )
        def opt(name: str) -> np.ndarray | None:
            return archive[name] if name in archive.files else None

        # Generation is pinned to the in-memory model (same parameters),
        # so staleness checks keep working on the cached path.
        out["snapshot"] = EmbeddingSnapshot(
            config=model.config,
            W=archive["W"],
            P=archive["P"],
            VS=opt("VS"),
            VG=opt("VG"),
            baseline_w=opt("baseline_w"),
            baseline_p=opt("baseline_p"),
            generation=model.generation,
        )


def _save_ingest(path: Path, out: dict) -> None:
    out["trace"].save(path / "trace.npz")


def _load_ingest(path: Path, spec: ScenarioSpec, out: dict) -> None:
    out["trace"] = DriftTrace.load(path / "trace.npz")


def _save_update(path: Path, out: dict) -> None:
    lifecycle: LifecycleArtifact = out["lifecycle"]
    save_model(lifecycle.model, path / "model.npz")
    (path / "lifecycle.json").write_text(
        json.dumps(
            {
                "ticks": lifecycle.ticks,
                "update_loss_history": lifecycle.update_loss_history,
                "update_steps": lifecycle.update_steps,
            },
            allow_nan=False,
        )
        + "\n"
    )
    w, p, interferers, runtime = lifecycle.window
    np.savez_compressed(
        path / "window.npz",
        schema_version=np.array(_WINDOW_SCHEMA_VERSION),
        w_idx=w,
        p_idx=p,
        interferers=interferers,
        runtime=runtime,
    )


def _load_update(path: Path, spec: ScenarioSpec, out: dict) -> None:
    payload = json.loads((path / "lifecycle.json").read_text())
    with np.load(path / "window.npz") as archive:
        check_schema_version(
            archive, _WINDOW_SCHEMA_VERSION, "window", path / "window.npz"
        )
        window = (
            archive["w_idx"],
            archive["p_idx"],
            archive["interferers"],
            archive["runtime"],
        )
    out["lifecycle"] = LifecycleArtifact(
        model=load_model(path / "model.npz"),
        ticks=payload["ticks"],
        update_loss_history=[float(v) for v in payload["update_loss_history"]],
        update_steps=int(payload["update_steps"]),
        window=window,
    )


def _save_simulate(path: Path, out: dict) -> None:
    # allow_nan=False: rates are None (JSON null) for empty epochs, so
    # the report stays strict JSON for non-Python consumers.
    (path / "schedule.json").write_text(
        json.dumps(out["schedule"].as_dict(), indent=2, allow_nan=False) + "\n"
    )


def _load_simulate(path: Path, spec: ScenarioSpec, out: dict) -> None:
    from ..orchestration.simulator import ScheduleReport

    out["schedule"] = ScheduleReport.from_dict(
        json.loads((path / "schedule.json").read_text())
    )


def _save_recalibrate(path: Path, out: dict) -> None:
    _write_predictor_json(path / "calibration.json", out["recalibrated"])


def _load_recalibrate(path: Path, spec: ScenarioSpec, out: dict) -> None:
    out["recalibrated"] = _read_predictor_json(
        path / "calibration.json", out["lifecycle"].model
    )


def _compute_collect(spec: ScenarioSpec, out: dict) -> None:
    out["dataset"] = collect_stage(spec)


def _compute_scale(spec: ScenarioSpec, out: dict) -> None:
    out["split"], out["baseline"] = scale_stage(spec, out["dataset"])


def _compute_train(spec: ScenarioSpec, out: dict) -> None:
    out["training"] = train_stage(spec, out["split"])


def _compute_calibrate(spec: ScenarioSpec, out: dict) -> None:
    out["predictor"] = calibrate_stage(
        spec, out["training"].model, out["split"]
    )


def _compute_evaluate(spec: ScenarioSpec, out: dict) -> None:
    out["metrics"] = evaluate_stage(
        spec, out["training"], out["predictor"], out["split"]
    )


def _compute_snapshot(spec: ScenarioSpec, out: dict) -> None:
    out["snapshot"] = snapshot_stage(out["training"].model)


def _compute_ingest(spec: ScenarioSpec, out: dict) -> None:
    out["trace"] = ingest_stage(spec, out["dataset"])


def _compute_update(spec: ScenarioSpec, out: dict) -> None:
    out["lifecycle"] = update_stage(
        spec, out["dataset"], out["training"], out["predictor"], out["trace"]
    )


def _compute_recalibrate(spec: ScenarioSpec, out: dict) -> None:
    out["recalibrated"] = recalibrate_stage(
        spec, out["lifecycle"], out["dataset"]
    )


def _compute_simulate(spec: ScenarioSpec, out: dict) -> None:
    out["schedule"] = simulate_stage(spec, out["dataset"], out["training"])


_COMPUTE = {
    "collect": _compute_collect,
    "scale": _compute_scale,
    "train": _compute_train,
    "calibrate": _compute_calibrate,
    "evaluate": _compute_evaluate,
    "snapshot": _compute_snapshot,
    "ingest": _compute_ingest,
    "update": _compute_update,
    "recalibrate": _compute_recalibrate,
    "simulate": _compute_simulate,
}
_SAVERS = {
    "collect": _save_collect,
    "scale": _save_scale,
    "train": _save_train,
    "calibrate": _save_calibrate,
    "evaluate": _save_evaluate,
    "snapshot": _save_snapshot,
    "ingest": _save_ingest,
    "update": _save_update,
    "recalibrate": _save_recalibrate,
    "simulate": _save_simulate,
}
_LOADERS = {
    "collect": _load_collect,
    "scale": _load_scale,
    "train": _load_train,
    "calibrate": _load_calibrate,
    "evaluate": _load_evaluate,
    "snapshot": _load_snapshot,
    "ingest": _load_ingest,
    "update": _load_update,
    "recalibrate": _load_recalibrate,
    "simulate": _load_simulate,
}


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
@dataclass
class PipelineResult:
    """Everything one pipeline run produced (or loaded from cache)."""

    spec: ScenarioSpec
    dataset: RuntimeDataset
    split: DataSplit
    baseline: LinearScalingBaseline
    training: TrainingResult
    predictor: ConformalRuntimePredictor
    metrics: dict
    snapshot: EmbeddingSnapshot
    #: Continual-learning suffix outputs (``None`` unless the run
    #: stopped at/after the corresponding lifecycle stage).
    trace: "DriftTrace | None" = None
    lifecycle: "LifecycleArtifact | None" = None
    recalibrated: ConformalRuntimePredictor | None = None
    #: Fleet-scheduler report (``None`` unless the run reached the
    #: ``simulate`` stage).
    schedule: "object | None" = None
    #: stage → content-addressed artifact key.
    stage_keys: dict[str, str] = field(default_factory=dict)
    #: Stages computed in this run, in order.
    executed: tuple[str, ...] = ()
    #: Stages served from the artifact store, in order.
    cached: tuple[str, ...] = ()

    @property
    def model(self) -> PitotModel:
        """The trained Pitot model (best-validation checkpoint)."""
        return self.training.model

    @property
    def trainer(self) -> PitotTrainer:
        """A trainer bound to the fitted model under the spec's config.

        Supports post-hoc ``evaluate_loss`` sweeps and continued
        fine-tuning without re-plumbing the configuration.
        """
        return PitotTrainer(self.training.model, self.spec.trainer)

    def service(
        self, cache_size: int = 65536, max_batch: int = 8192
    ) -> "PredictionService":
        """A calibrated :class:`~repro.serving.PredictionService`.

        Built from the snapshot stage's frozen embeddings plus the
        calibrate stage's head choices — the end of the declarative path:
        spec in, serving-ready predictor out.
        """
        from ..serving.service import PredictionService

        return PredictionService(
            self.snapshot,
            choices=self.predictor.choices,
            use_pools=self.predictor.use_pools,
            cache_size=cache_size,
            max_batch=max_batch,
        )

    def recalibrated_service(
        self, cache_size: int = 65536, max_batch: int = 8192
    ) -> "PredictionService":
        """Serving state for the post-lifecycle generation.

        Built from the ``update`` stage's warm-updated model and the
        ``recalibrate`` stage's rolling-window conformal layer — what a
        deployment would run after the drift trace. Requires a run with
        ``stop_after="recalibrate"``.
        """
        from ..serving.service import PredictionService

        if self.recalibrated is None or self.lifecycle is None:
            raise RuntimeError(
                "no recalibrated generation in this result; run the "
                "pipeline with stop_after='recalibrate'"
            )
        return PredictionService(
            EmbeddingSnapshot.from_model(self.lifecycle.model),
            choices=self.recalibrated.choices,
            use_pools=self.recalibrated.use_pools,
            cache_size=cache_size,
            max_batch=max_batch,
        )


def pipeline_stage_keys(spec: ScenarioSpec) -> dict[str, str]:
    """Every stage's content-addressed key for ``spec``, without running.

    The same chaining :func:`run_pipeline` applies; front-ends use it to
    probe an :class:`ArtifactStore` for prerequisites (e.g. ``repro
    lifecycle run`` refuses to start when the trained model it would
    build on is not cached).
    """
    keys: dict[str, str] = {}
    for stage in PIPELINE_STAGES:
        keys[stage.name] = stage_key(
            stage.name,
            spec.component_hash(*stage.spec_components),
            tuple(keys[name] for name in stage.inputs),
        )
    return keys


def stage_closure(stop_after: str) -> frozenset[str]:
    """``stop_after`` plus its transitive input ancestors in the DAG."""
    needed = {stop_after}
    frontier = [stop_after]
    while frontier:
        stage = _STAGE_BY_NAME[frontier.pop()]
        for name in stage.inputs:
            if name not in needed:
                needed.add(name)
                frontier.append(name)
    return frozenset(needed)


def _try_load(
    stage_name: str,
    store: ArtifactStore,
    key: str,
    spec: ScenarioSpec,
    out: dict,
) -> bool:
    """Load a committed artifact into ``out``; False on a stale payload.

    A payload-schema bump (dataset/model/split/snapshot version) under
    an unchanged stage key means the committed artifact predates this
    code. Treat it as a miss and recompute — old caches must never
    abort a run.
    """
    try:
        _LOADERS[stage_name](store.read_dir(stage_name, key), spec, out)
        return True
    except ValueError:
        return False


def run_pipeline(
    spec: ScenarioSpec | str,
    store: ArtifactStore | str | Path | None = None,
    stop_after: str = "snapshot",
    force: bool = False,
    needed_only: bool = False,
) -> PipelineResult:
    """Run (or replay) the staged pipeline for one scenario.

    Parameters
    ----------
    spec:
        A :class:`ScenarioSpec` or a registry name.
    store:
        Artifact store (or its root path). ``None`` disables caching:
        every stage computes fresh and nothing is persisted.
    stop_after:
        Last stage to run (``"snapshot"`` = the full DAG). Earlier
        stops leave later :class:`PipelineResult` fields unset —
        ``collect``-only runs are how the CLI implements ``collect``.
    force:
        Recompute every stage even on a cache hit (artifacts are
        rewritten, so downstream consumers see fresh keys' content).
    needed_only:
        Restrict the run to ``stop_after``'s ancestor closure in the
        stage DAG instead of every stage listed before it — how ``repro
        schedule run`` reaches ``simulate`` without forcing the
        lifecycle replay stages (which a drift-free scheduling scenario
        cannot run).
    """
    if isinstance(spec, str):
        spec = get_scenario(spec)
    if store is not None and not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if stop_after not in _STAGE_BY_NAME:
        raise ValueError(
            f"unknown stage {stop_after!r}; "
            f"stages: {[s.name for s in PIPELINE_STAGES]}"
        )
    needed = stage_closure(stop_after) if needed_only else None

    keys: dict[str, str] = {}
    executed: list[str] = []
    cached: list[str] = []
    out: dict = {}
    all_keys = pipeline_stage_keys(spec)
    for stage in PIPELINE_STAGES:
        if needed is not None and stage.name not in needed:
            continue
        key = all_keys[stage.name]
        keys[stage.name] = key
        loaded = False
        if store is not None and not force and store.has(stage.name, key):
            loaded = _try_load(stage.name, store, key, spec, out)
        if not loaded and store is not None:
            # Miss (or force): serialize with concurrent producers of
            # this artifact, then re-check under the lock — the previous
            # holder may have committed while this process waited, in
            # which case load its result instead of recomputing
            # (double-checked locking; how parallel sweep workers keep
            # shared ancestor stages exactly-once).
            with store.lock(stage.name, key):
                if not force and store.has(stage.name, key):
                    loaded = _try_load(stage.name, store, key, spec, out)
                if not loaded:
                    _COMPUTE[stage.name](spec, out)
                    path = store.write_dir(stage.name, key)
                    _SAVERS[stage.name](path, out)
                    store.commit(
                        stage.name,
                        key,
                        meta={
                            "scenario": spec.name,
                            "spec_hash": spec.spec_hash(),
                        },
                    )
        elif not loaded:
            _COMPUTE[stage.name](spec, out)
        if loaded:
            cached.append(stage.name)
        else:
            executed.append(stage.name)
        if stage.name == stop_after:
            break

    return PipelineResult(
        spec=spec,
        dataset=out.get("dataset"),
        split=out.get("split"),
        baseline=out.get("baseline"),
        training=out.get("training"),
        predictor=out.get("predictor"),
        metrics=out.get("metrics"),
        snapshot=out.get("snapshot"),
        trace=out.get("trace"),
        lifecycle=out.get("lifecycle"),
        recalibrated=out.get("recalibrated"),
        schedule=out.get("schedule"),
        stage_keys=keys,
        executed=tuple(executed),
        cached=tuple(cached),
    )
