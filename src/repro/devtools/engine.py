"""The lint engine: rule registry, module model, suppressions, runner.

A rule is a small AST visitor with a stable code (``RPRxxx``), a set of
path globs selecting the files its invariant lives in, and a ``check``
method yielding :class:`Violation` rows. The engine parses each file
once into a :class:`SourceModule` (source, AST, parent links, suppression
table) and runs every selected rule whose globs match the file.

Suppressions are explicit and per-line::

    rng = np.random.default_rng()  # repro-lint: disable=RPR001

or file-wide (anywhere in the file, conventionally at the top)::

    # repro-lint: disable-file=RPR006

``disable=all`` silences every rule on that line. Suppressed violations
are counted (reported in the summary) but never fail the run.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Violation",
    "SourceModule",
    "LintRule",
    "LintResult",
    "register",
    "all_rules",
    "run_lint",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class SourceModule:
    """One parsed file plus the derived tables rules share.

    ``relpath`` is the forward-slash path rules match their globs
    against (relative to the lint invocation root when possible, so the
    same rule scoping works on ``src/repro/...`` and on test fixture
    trees that mirror the layout).
    """

    def __init__(self, path: Path, root: Path | None = None) -> None:
        self.path = path
        try:
            rel = path.relative_to(root) if root is not None else path
        except ValueError:
            rel = path
        self.relpath = rel.as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] | None = None
        self.line_suppressions, self.file_suppressions = _parse_suppressions(
            self.lines
        )

    # ------------------------------------------------------------------
    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent links over the AST (built on first use)."""
        if self._parents is None:
            table: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    table[child] = node
            self._parents = table
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Enclosing nodes of ``node``, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for parent in self.ancestors(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return parent
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for parent in self.ancestors(node):
            if isinstance(parent, ast.ClassDef):
                return parent
        return None

    def is_suppressed(self, violation: Violation) -> bool:
        for codes in (
            self.file_suppressions,
            self.line_suppressions.get(violation.line, frozenset()),
        ):
            if "all" in codes or violation.code in codes:
                return True
        return False


def _parse_suppressions(
    lines: list[str],
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    per_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() if code.strip().lower() != "all" else "all"
            for code in match.group(2).split(",")
            if code.strip()
        )
        if match.group(1) == "disable-file":
            file_wide |= codes
        else:
            per_line[lineno] = per_line.get(lineno, frozenset()) | codes
    return per_line, frozenset(file_wide)


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class LintRule:
    """Base class; subclasses set the class attributes and ``check``.

    ``default_globs`` scope the rule to the files its invariant lives
    in; per-rule ``[tool.repro-lint.rprXXX]`` config may override them
    via the ``globs`` key, and any other option lands in
    ``self.options``.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    default_globs: tuple[str, ...] = ("*.py",)

    def __init__(self, options: dict | None = None) -> None:
        self.options = dict(options or {})
        globs = self.options.get("globs")
        self.globs: tuple[str, ...] = (
            tuple(globs) if globs else self.default_globs
        )

    def applies_to(self, relpath: str) -> bool:
        return any(fnmatch.fnmatch(relpath, glob) for glob in self.globs)

    def check(self, module: SourceModule) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: dict[str, type[LintRule]] = {}


def register(rule_cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.code:
        raise ValueError(f"{rule_cls.__name__} has no code")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[LintRule]]:
    """code → rule class, with the built-in rule modules loaded."""
    from . import rules  # noqa: F401  (import populates the registry)

    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(
    paths: Iterable[Path], exclude: tuple[str, ...] = ()
) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            rel = candidate.as_posix()
            if any(fnmatch.fnmatch(rel, glob) for glob in exclude):
                continue
            yield candidate


def run_lint(paths: Iterable[Path | str], config) -> LintResult:
    """Lint ``paths`` under ``config`` (a :class:`LintConfig`)."""
    from .baseline import load_baseline

    result = LintResult()
    rule_classes = all_rules()
    selected = config.selected_codes(rule_classes)
    rules = [
        rule_classes[code](config.rule_options.get(code.lower(), {}))
        for code in selected
    ]
    baseline = load_baseline(config.baseline) if config.baseline else None
    root = Path.cwd()

    resolved = [Path(p) for p in paths]
    missing = [str(p) for p in resolved if not p.exists()]
    if missing:
        result.errors.extend(f"no such path: {p}" for p in missing)
        return result

    for path in iter_python_files(resolved, config.exclude):
        try:
            module = SourceModule(path, root=root)
        except SyntaxError as exc:
            result.errors.append(f"{path}: syntax error: {exc.msg}")
            continue
        result.files_checked += 1
        for rule in rules:
            if not rule.applies_to(module.relpath):
                continue
            for violation in rule.check(module):
                if module.is_suppressed(violation):
                    result.suppressed.append(violation)
                elif baseline is not None and baseline.matches(violation):
                    result.baselined.append(violation)
                else:
                    result.violations.append(violation)
    result.violations.sort()
    return result
