"""Lint configuration: ``[tool.repro-lint]`` in ``pyproject.toml``.

Recognized keys::

    [tool.repro-lint]
    paths = ["src"]          # default lint roots when the CLI gets none
    select = ["RPR001"]      # restrict to these codes (default: all)
    ignore = ["RPR006"]      # drop these codes from the selection
    exclude = ["*/_vendored/*"]  # path globs never linted
    baseline = ".repro-lint-baseline.json"  # optional known-issue file

    [tool.repro-lint.rpr003]     # per-rule options (lower-cased code)
    writers = ["__init__", "swap"]

Python 3.11+ parses the file with :mod:`tomllib`; on 3.10 (which has no
stdlib TOML parser and this repo installs nothing) a minimal fallback
parser handles the subset the lint section uses — tables, strings,
booleans, integers, and (possibly multiline) string arrays.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintConfig", "load_config", "find_pyproject"]


@dataclass
class LintConfig:
    """Resolved lint settings for one run."""

    paths: tuple[str, ...] = ("src",)
    select: tuple[str, ...] = ()  #: empty = every registered rule
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    baseline: str | None = None
    #: lower-cased rule code → option dict (from ``[tool.repro-lint.rprXXX]``).
    rule_options: dict[str, dict] = field(default_factory=dict)

    def selected_codes(self, registry: dict[str, type]) -> list[str]:
        codes = sorted(registry)
        if self.select:
            wanted = {code.upper() for code in self.select}
            unknown = wanted - set(codes)
            if unknown:
                raise ValueError(
                    f"unknown rule code(s) in select: {sorted(unknown)}; "
                    f"known: {codes}"
                )
            codes = [code for code in codes if code in wanted]
        ignored = {code.upper() for code in self.ignore}
        return [code for code in codes if code not in ignored]


def find_pyproject(start: Path | None = None) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start`` (default cwd)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        path = candidate / "pyproject.toml"
        if path.is_file():
            return path
    return None


def load_config(pyproject: Path | str | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from a ``pyproject.toml`` (or defaults).

    ``pyproject=None`` searches upward from the working directory; a
    missing file or a file without ``[tool.repro-lint]`` yields the
    defaults (all rules, ``src`` root, no excludes).
    """
    path = Path(pyproject) if pyproject is not None else find_pyproject()
    if path is None or not path.is_file():
        return LintConfig()
    data = _parse_toml(path)
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        return LintConfig()
    rule_options = {
        key: value
        for key, value in section.items()
        if isinstance(value, dict)
    }
    return LintConfig(
        paths=tuple(section.get("paths", ("src",))),
        select=tuple(section.get("select", ())),
        ignore=tuple(section.get("ignore", ())),
        exclude=tuple(section.get("exclude", ())),
        baseline=section.get("baseline"),
        rule_options=rule_options,
    )


# ----------------------------------------------------------------------
# TOML loading (stdlib on 3.11+, minimal fallback on 3.10)
# ----------------------------------------------------------------------
def _parse_toml(path: Path) -> dict:
    try:
        import tomllib
    except ModuleNotFoundError:
        return _mini_toml(path.read_text(encoding="utf-8"))
    with path.open("rb") as handle:
        return tomllib.load(handle)


_TABLE_RE = re.compile(r"^\[([^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_.\-\"']+)\s*=\s*(.*)$")


def _mini_toml(text: str) -> dict:
    """Parse the TOML subset ``[tool.repro-lint]`` uses.

    Tables, bare/quoted keys, strings, booleans, ints, floats, and
    arrays of scalars (which may span lines). Anything fancier (inline
    tables, dates, arrays-of-tables) is skipped rather than mis-read —
    this is a config reader for one known section, not a TOML library.
    """
    root: dict = {}
    current = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index])
        index += 1
        if not line:
            continue
        table = _TABLE_RE.match(line)
        if table:
            current = root
            for part in _split_key(table.group(1)):
                current = current.setdefault(part, {})
                if not isinstance(current, dict):  # pragma: no cover
                    current = {}
            continue
        pair = _KEY_RE.match(line)
        if not pair:
            continue
        key = _split_key(pair.group(1))[-1]
        value = pair.group(2).strip()
        if value.startswith("[") and "]" not in value:
            # Multiline array: accumulate until the closing bracket.
            while index < len(lines) and "]" not in value:
                value += " " + _strip_comment(lines[index])
                index += 1
        parsed = _parse_value(value.strip())
        if parsed is not _SKIP:
            current[key] = parsed
    return root


class _Skip:
    pass


_SKIP = _Skip()


def _strip_comment(line: str) -> str:
    out: list[str] = []
    quote: str | None = None
    for char in line:
        if quote:
            out.append(char)
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
            out.append(char)
        elif char == "#":
            break
        else:
            out.append(char)
    return "".join(out).strip()


def _split_key(raw: str) -> list[str]:
    return [part.strip().strip("\"'") for part in raw.strip().split(".")]


def _parse_value(value: str):
    if not value:
        return _SKIP
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        items = []
        for item in _split_array(inner):
            parsed = _parse_value(item.strip())
            if parsed is not _SKIP:
                items.append(parsed)
        return items
    if value in ("true", "false"):
        return value == "true"
    if (value.startswith('"') and value.endswith('"')) or (
        value.startswith("'") and value.endswith("'")
    ):
        return value[1:-1]
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return _SKIP


def _split_array(inner: str) -> list[str]:
    items: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for char in inner:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
            current.append(char)
        elif char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if "".join(current).strip():
        items.append("".join(current))
    return items
