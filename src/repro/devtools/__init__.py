"""Development tooling: the ``repro-lint`` static-analysis framework.

The repo's correctness rests on conventions no general-purpose linter
knows about: content-addressed pipeline stages are only sound if every
stage is deterministic under its spec seeds, conformal guarantees are
only valid if calibration stays disjoint from training, and the serving
hot-swap is only torn-read-free if ``self._state`` is captured exactly
once per operation. This package turns those implicit contracts into
machine-checked rules (``RPR001``–``RPR007``) enforced over ``src/`` as
a tier-1 test and a CI gate.

Entry points:

* ``repro lint [paths...]`` — the CLI subcommand;
* ``python -m repro.devtools.lint`` — the standalone module;
* :func:`run_lint` — the library API the tests drive.
"""

from .config import LintConfig, load_config
from .engine import (
    LintRule,
    LintResult,
    SourceModule,
    Violation,
    all_rules,
    register,
    run_lint,
)

__all__ = [
    "LintConfig",
    "load_config",
    "LintRule",
    "LintResult",
    "SourceModule",
    "Violation",
    "all_rules",
    "register",
    "run_lint",
]
