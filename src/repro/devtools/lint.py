"""``repro lint`` / ``python -m repro.devtools.lint`` — the entry point.

Exit codes: 0 clean, 1 violations found, 2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import write_baseline
from .config import LintConfig, load_config
from .engine import all_rules, run_lint
from .reporting import format_human, format_json

__all__ = ["add_lint_arguments", "build_parser", "run", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: [tool.repro-lint] paths, "
             "falling back to src/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json emits the versioned machine schema)",
    )
    parser.add_argument(
        "--select", action="append", metavar="CODES", default=None,
        help="run only these rule codes (comma-separated or repeated, "
             "e.g. --select RPR001,RPR003)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="CODES", default=None,
        help="drop these rule codes from the selection "
             "(comma-separated or repeated)",
    )
    parser.add_argument(
        "--config", default=None,
        help="explicit pyproject.toml (default: search upward from cwd)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file of grandfathered violations "
             "(overrides the configured one)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current violations to the baseline file and exit 0",
    )
    parser.add_argument(
        "--update-spec-fingerprint", action="store_true",
        help="regenerate the committed RPR002 spec-schema fingerprint "
             "(run this alongside a SPEC_SCHEMA_VERSION bump) and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print suppressed violations",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase "
                    "(determinism, schema, and swap-atomicity contracts)",
    )
    add_lint_arguments(parser)
    return parser


def _split_codes(groups: list[str]) -> tuple[str, ...]:
    """Flatten repeated/comma-separated ``--select`` values."""
    return tuple(
        code.strip()
        for group in groups
        for code in group.split(",")
        if code.strip()
    )


def _spec_paths(config: LintConfig) -> tuple[Path, Path | None]:
    """(spec module, fingerprint file) from the rpr002 options."""
    options = config.rule_options.get("rpr002", {})
    spec = Path(options.get("spec-file", "src/repro/scenarios/spec.py"))
    out = options.get("fingerprint-file")
    return spec, Path(out) if out else None


def run(args: argparse.Namespace) -> int:
    """Execute one lint invocation from parsed arguments."""
    if args.list_rules:
        for code, rule_cls in sorted(all_rules().items()):
            print(f"{code}  {rule_cls.name}: {rule_cls.description}")
        return 0

    try:
        config = load_config(args.config)
    except (OSError, ValueError) as exc:
        print(f"repro-lint: bad configuration: {exc}", file=sys.stderr)
        return 2

    if args.select:
        config.select = _split_codes(args.select)
    if args.ignore:
        config.ignore = _split_codes(args.ignore)
    if args.baseline:
        config.baseline = args.baseline

    if args.update_spec_fingerprint:
        from .rules.schema import write_spec_fingerprint

        spec, out = _spec_paths(config)
        if not spec.is_file():
            print(f"repro-lint: no spec module at {spec}", file=sys.stderr)
            return 2
        try:
            written = write_spec_fingerprint(spec, out)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        print(f"spec-schema fingerprint written to {written}")
        return 0

    paths = args.paths or list(config.paths)
    try:
        result = run_lint(paths, config)
    except ValueError as exc:  # unknown rule code in select
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if result.errors and not result.files_checked:
        for error in result.errors:
            print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = config.baseline or ".repro-lint-baseline.json"
        count = write_baseline(target, result.violations)
        print(f"baseline written to {target} ({count} entr"
              f"{'y' if count == 1 else 'ies'})")
        return 0

    if args.format == "json":
        print(format_json(result))
    else:
        print(format_human(result, verbose=args.verbose))
    return 1 if result.violations or result.errors else 0


def main(argv: list[str] | None = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
