"""RPR004 — pipeline stages are pure functions of (spec, inputs).

A stage's artifact is keyed on exactly the spec components it reads plus
its upstream keys; the cache is only honest if the stage body computes
the same bytes every time. Two impurity classes sneak in easily:

* **Wall-clock reads** (``time.time``, ``datetime.now``, …) — anything
  time-derived in a cached payload makes "warm hit" and "fresh compute"
  diverge. (Timing *around* stages is fine and lives in the CLI, outside
  this rule's scope.)
* **Filesystem writes outside the ArtifactStore commit protocol** —
  a stage that writes its own files bypasses the MANIFEST commit point,
  so a crashed run can leave half-written state that a later run treats
  as complete.

Persistence is sanctioned only inside the store itself
(``allow-classes``, default ``ArtifactStore``) and the per-stage
saver/serializer helpers (``allow-functions`` name patterns, default
``_save_*`` and ``_write_*``) that :func:`run_pipeline` invokes between
``write_dir`` and ``commit``.

The rule also covers :mod:`repro.sweep`: sweep workers produce the same
cached artifacts concurrently, so worker code may only touch the
filesystem through the store's lock/commit protocol — a stray write in
the runner would race its siblings with no manifest to arbitrate.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator

from ..engine import LintRule, SourceModule, Violation, register
from .common import build_aliases, call_keyword, dotted_name

#: Dotted call targets that read the wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Method/function names that persist bytes to the filesystem.
_WRITE_ATTRS = frozenset(
    {
        "write_text",
        "write_bytes",
        "save",
        "savez",
        "savez_compressed",
        "savetxt",
        "dump",
        "mkdir",
        "makedirs",
        "rmtree",
        "unlink",
        "rename",
        "replace",
        "touch",
        "rmdir",
        "to_csv",
        "to_json",
    }
)


@register
class PipelinePurityRule(LintRule):
    code = "RPR004"
    name = "stage-purity"
    description = (
        "no wall-clock reads or filesystem writes in pipeline stage "
        "bodies; persistence goes through the ArtifactStore commit "
        "protocol"
    )
    default_globs = ("*pipeline/*.py", "*sweep/*.py")

    def __init__(self, options: dict | None = None) -> None:
        super().__init__(options)
        self.allow_functions: tuple[str, ...] = tuple(
            self.options.get("allow-functions", ("_save_*", "_write_*"))
        )
        self.allow_classes: tuple[str, ...] = tuple(
            self.options.get("allow-classes", ("ArtifactStore",))
        )

    # ------------------------------------------------------------------
    def check(self, module: SourceModule) -> Iterator[Violation]:
        aliases = build_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _WALL_CLOCK or (
                name is not None
                and name.split(".", 1)[0] == "datetime"
                and name.split(".")[-1] in ("now", "utcnow", "today")
            ):
                yield self.violation(
                    module,
                    node,
                    f"wall-clock read ({name}) in pipeline code: stages "
                    f"must be deterministic in (spec, inputs) or the "
                    f"content-addressed cache stops meaning 'this exact "
                    f"computation already ran'",
                )
                continue
            if self._is_write_call(node, name) and not self._sanctioned(
                module, node
            ):
                target = name or getattr(node.func, "attr", "write")
                yield self.violation(
                    module,
                    node,
                    f"filesystem write ({target}) outside the "
                    f"ArtifactStore commit protocol: stage outputs must "
                    f"be persisted by the store's savers between "
                    f"write_dir() and commit(), so crashed runs read as "
                    f"misses instead of half-written artifacts",
                )

    # ------------------------------------------------------------------
    def _is_write_call(self, node: ast.Call, name: str | None) -> bool:
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            return self._open_writes(node)
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _WRITE_ATTRS
        if name is not None:
            return name.split(".")[-1] in _WRITE_ATTRS
        return False

    @staticmethod
    def _open_writes(node: ast.Call) -> bool:
        mode = call_keyword(node, "mode")
        if mode is None and len(node.args) >= 2:
            mode = node.args[1]
        if mode is None:
            return False  # default "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(flag in mode.value for flag in "wax+")
        return True  # dynamic mode: assume the worst

    def _sanctioned(self, module: SourceModule, node: ast.Call) -> bool:
        func = module.enclosing_function(node)
        if func is not None and any(
            fnmatch.fnmatch(func.name, pattern)
            for pattern in self.allow_functions
        ):
            return True
        cls = module.enclosing_class(node)
        return cls is not None and cls.name in self.allow_classes
