"""RPR001 — seeded randomness only.

The pipeline's content-addressed cache keys (``spec_hash``) promise that
equal specs reproduce bit-identical artifacts. That promise dies the
moment any code inside ``src/repro`` draws entropy the spec does not
control: an unseeded ``np.random.default_rng()`` or any legacy
module-level ``np.random.*`` draw (``rand``, ``normal``, ``seed``, …)
pulls from hidden global state, so a "warm" cache hit would no longer
mean "this exact computation already ran".

The rule flags:

* ``np.random.default_rng()`` with no argument (or an explicit ``None``);
* calls through ``np.random.<draw>`` for any legacy global-state
  function (everything except ``default_rng`` / ``Generator`` /
  ``SeedSequence`` used as types or constructors);
* unseeded entropy-pulling constructors — ``SeedSequence()`` /
  ``PCG64()`` / ``PCG64(None)`` — the route a bootstrap resampler
  would take around the ``default_rng`` check;
* importing those legacy draws directly (``from numpy.random import
  rand``) — the import is the entry point.

RNG must flow in as a ``numpy.random.Generator`` argument or derive
from spec seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintRule, SourceModule, Violation, register
from .common import build_aliases, dotted_name

#: numpy.random attributes that are legitimate without a hidden global
#: stream: the seeded-generator constructor and the types themselves.
_ALLOWED_ATTRS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
)

#: Constructors that pull OS entropy when called with no seed argument.
#: ``default_rng`` is handled separately (older message kept verbatim);
#: these are the bit-generator-level escape hatches a bootstrap
#: resampler might reach for.
_SEEDED_CTORS = frozenset({"SeedSequence", "PCG64"})


@register
class SeededRandomnessRule(LintRule):
    code = "RPR001"
    name = "seeded-randomness"
    description = (
        "no unseeded default_rng() or module-level np.random draws; "
        "RNG must derive from spec seeds or arrive as a Generator"
    )
    default_globs = ("*.py",)

    def check(self, module: SourceModule) -> Iterator[Violation]:
        aliases = build_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)

    # ------------------------------------------------------------------
    def _check_import(
        self, module: SourceModule, node: ast.ImportFrom
    ) -> Iterator[Violation]:
        if node.level or node.module != "numpy.random":
            return
        for alias in node.names:
            if alias.name != "*" and alias.name not in _ALLOWED_ATTRS:
                yield self.violation(
                    module,
                    node,
                    f"import of numpy.random.{alias.name} draws from the "
                    f"hidden global stream; thread a seeded "
                    f"np.random.Generator instead",
                )

    def _check_call(
        self, module: SourceModule, node: ast.Call, aliases: dict[str, str]
    ) -> Iterator[Violation]:
        name = dotted_name(node.func, aliases)
        if name is None:
            return
        if name == "numpy.random.default_rng":
            if not node.args or (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                yield self.violation(
                    module,
                    node,
                    "np.random.default_rng() without a seed draws OS "
                    "entropy, so equal specs stop reproducing equal "
                    "artifacts; derive the seed from the spec "
                    "(e.g. default_rng(spec.seeds.train))",
                )
            return
        if name.startswith("numpy.random."):
            attr = name.split(".")[2]
            if attr in _SEEDED_CTORS:
                # A keyword (entropy=/seed=) counts as seeding; only a
                # bare call or an explicit leading None is entropy.
                if (not node.args and not node.keywords) or (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                ):
                    yield self.violation(
                        module,
                        node,
                        f"np.random.{attr}() without a seed pulls OS "
                        f"entropy, so bootstrap draws (and their margins) "
                        f"stop reproducing; derive the seed from the spec "
                        f"or the calibration content",
                    )
                return
            if attr not in _ALLOWED_ATTRS:
                yield self.violation(
                    module,
                    node,
                    f"np.random.{attr}(...) draws from the hidden global "
                    f"stream and breaks spec_hash cache honesty; use a "
                    f"seeded Generator passed in by the caller",
                )
