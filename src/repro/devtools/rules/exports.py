"""RPR006 — ``__all__`` consistency and re-export integrity.

``__all__`` is the public-API contract every package ``__init__`` and
module declares. Two rots accumulate silently: a name listed in
``__all__`` that was renamed or deleted (consumers get an ImportError
only on ``from pkg import *`` or documentation builds), and an
``__init__`` re-export (``from .sub import name``) whose source symbol
moved. Both are pure-static facts, so the rule checks them statically:

* every name in ``__all__`` must be bound at module top level (def,
  class, assignment, or import);
* every *relative* ``from .sub import name`` must name a symbol bound at
  the top level of the target module (resolved on disk; absolute
  imports and unresolvable targets are skipped, star-imports disable
  the check for that module).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..engine import LintRule, SourceModule, Violation, register

#: Cross-module binding tables are cached per lint process (the same
#: submodule backs many ``__init__`` re-exports).
_BINDINGS_CACHE: dict[Path, frozenset[str] | None] = {}


def module_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Top-level bound names and whether a star-import was seen.

    Recurses into top-level ``if``/``try``/``with``/loop bodies (where
    conditional definitions legitimately live) but not into functions or
    classes.
    """
    names: set[str] = {"__all__", "__doc__", "__name__", "__file__"}
    star = False

    def visit_block(stmts: list[ast.stmt]) -> None:
        nonlocal star
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    _collect_targets(target, names)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                _collect_targets(stmt.target, names)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star = True
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.If):
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit_block(stmt.body)
                for handler in stmt.handlers:
                    visit_block(handler.body)
                visit_block(stmt.orelse)
                visit_block(stmt.finalbody)
            elif isinstance(stmt, (ast.For, ast.While)):
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                visit_block(stmt.body)

    visit_block(tree.body)
    return names, star


def _collect_targets(target: ast.expr, names: set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _collect_targets(element, names)


def declared_all(tree: ast.Module) -> tuple[list[tuple[str, ast.AST]], bool]:
    """``__all__`` entries with their anchor nodes; bool = found."""
    entries: list[tuple[str, ast.AST]] = []
    found = False
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
        ):
            value = stmt.value
        if value is None:
            continue
        found = True
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append((element.value, element))
    return entries, found


def _resolve_relative(
    module_path: Path, level: int, target: str | None
) -> Path | None:
    """Filesystem location of ``from <dots><target> import ...``."""
    # level=1 is the containing package — the parent directory both for
    # a package __init__ and for a plain module.
    base = module_path.parent
    for _ in range(level - 1):
        base = base.parent
    if target:
        for part in target.split("."):
            base = base / part
    if (base / "__init__.py").is_file():
        return base / "__init__.py"
    candidate = base.with_suffix(".py")
    if candidate.is_file():
        return candidate
    return None


def _target_bindings(path: Path) -> frozenset[str] | None:
    """Top-level names of the module at ``path`` (None = unknowable)."""
    if path not in _BINDINGS_CACHE:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            _BINDINGS_CACHE[path] = None
        else:
            names, star = module_bindings(tree)
            _BINDINGS_CACHE[path] = None if star else frozenset(names)
    return _BINDINGS_CACHE[path]


@register
class ExportConsistencyRule(LintRule):
    code = "RPR006"
    name = "export-consistency"
    description = (
        "every __all__ entry must resolve to a top-level binding and "
        "every relative re-export must exist in its source module"
    )
    default_globs = ("*.py",)

    def check(self, module: SourceModule) -> Iterator[Violation]:
        bindings, star = module_bindings(module.tree)
        entries, _ = declared_all(module.tree)
        if not star:
            for name, anchor in entries:
                if name not in bindings:
                    yield self.violation(
                        module,
                        anchor,
                        f"__all__ exports {name!r} but the module never "
                        f"binds it: consumers of the public API (star "
                        f"imports, docs) get an ImportError — remove the "
                        f"entry or restore the binding",
                    )
        yield from self._check_reexports(module)

    def _check_reexports(self, module: SourceModule) -> Iterator[Violation]:
        for stmt in ast.walk(module.tree):
            if not isinstance(stmt, ast.ImportFrom) or stmt.level == 0:
                continue
            target = _resolve_relative(module.path, stmt.level, stmt.module)
            if target is None:
                continue
            names = _target_bindings(target)
            if names is None:
                continue
            dots = "." * stmt.level
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                # "from .pkg import submodule" imports a module object,
                # not a symbol; accept it when the file exists.
                if alias.name not in names and not self._is_submodule(
                    target, alias.name
                ):
                    yield self.violation(
                        module,
                        stmt,
                        f"re-export 'from {dots}{stmt.module or ''} import "
                        f"{alias.name}' names a symbol that does not exist "
                        f"in {target.as_posix()}: the public API promises "
                        f"a name the package cannot deliver",
                    )

    @staticmethod
    def _is_submodule(target: Path, name: str) -> bool:
        if target.name != "__init__.py":
            return False
        package = target.parent
        return (package / f"{name}.py").is_file() or (
            package / name / "__init__.py"
        ).is_file()
