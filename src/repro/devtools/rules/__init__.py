"""Built-in rule modules; importing this package populates the registry.

Rule codes, one invariant each:

* ``RPR001`` — seeded randomness only (cache-key honesty);
* ``RPR002`` — spec-schema / ``SPEC_SCHEMA_VERSION`` coupling;
* ``RPR003`` — swap-atomicity in the serving hot path;
* ``RPR004`` — pipeline stages are pure in (spec, inputs);
* ``RPR005`` — frozen dataclasses stay frozen after ``__post_init__``;
* ``RPR006`` — ``__all__`` / re-export consistency;
* ``RPR007`` — no grad-building calls outside ``no_grad()`` on
  serving/eval/conformal paths.
"""

from . import (  # noqa: F401  (imports register the rules)
    atomicity,
    determinism,
    exports,
    frozen,
    purity,
    schema,
    tape,
)

__all__ = [
    "atomicity",
    "determinism",
    "exports",
    "frozen",
    "purity",
    "schema",
    "tape",
]
