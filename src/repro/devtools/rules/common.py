"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast

__all__ = [
    "build_aliases",
    "dotted_name",
    "is_frozen_dataclass",
    "call_keyword",
]


def build_aliases(tree: ast.Module) -> dict[str, str]:
    """Name → dotted origin for every top-level-ish import in the file.

    Relative imports keep their leading dots (``from ..nn import Tensor``
    binds ``Tensor`` to ``..nn.Tensor``), so rules can match package
    segments without resolving the filesystem. Imports inside functions
    are included too — a deferred import grants the same powers.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )
    return aliases


def dotted_name(node: ast.AST, aliases: dict[str, str] | None = None) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, with the root de-aliased.

    Returns ``None`` for anything that is not a plain chain (calls,
    subscripts, literals).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = current.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


def is_frozen_dataclass(node: ast.ClassDef) -> bool:
    """True when decorated ``@dataclass(frozen=True)`` (any alias spelling)."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name.split(".")[-1] != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def call_keyword(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None
