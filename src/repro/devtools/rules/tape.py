"""RPR007 — tape discipline in serving/eval/conformal code.

The autograd engine builds a reverse-mode tape for every ``Tensor`` op
executed while gradients are enabled. Training wants that; serving,
evaluation, and conformal calibration never backpropagate, so a
grad-building call on those paths is a silent performance and memory
leak — every query grows a graph nobody will ever traverse. The PR 2
no-grad work moved all inference to either the ndarray-only
``EmbeddingSnapshot`` forward or ``with no_grad():`` blocks; this rule
keeps it that way.

Flagged, unless lexically inside a ``with no_grad():`` block:

* calls to any name imported from the ``repro.nn`` autograd package
  (``Tensor``, functional ops, layer constructors — everything except
  ``no_grad`` / ``is_grad_enabled`` themselves);
* calls through an ``nn``-module alias (``nn.Tensor(...)``);
* the model's tape-building entry points ``compute_embeddings`` /
  ``compute_embeddings_sparse`` on any receiver.

The ndarray snapshot forward (``EmbeddingSnapshot.forward``) and the
model's own ``predict_*`` wrappers (which guard internally) stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintRule, SourceModule, Violation, register

#: repro.nn names that are grad-*control*, not grad-building.
_SAFE_NN_NAMES = frozenset({"no_grad", "is_grad_enabled"})

#: Method names that build the autograd tape on the model or trainer.
_TAPE_METHODS = frozenset(
    {
        "compute_embeddings",
        "compute_embeddings_sparse",
        "_batch_loss_backward",
        "_tape_step",
    }
)


def _is_nn_module(module_text: str | None, level: int) -> bool:
    """True for ``from ..nn import ...`` / ``from repro.nn import ...``."""
    if module_text is None:
        return False
    parts = module_text.split(".")
    return "nn" in parts if level else parts[:2] == ["repro", "nn"] or (
        len(parts) >= 1 and parts[0] == "nn"
    )


@register
class TapeDisciplineRule(LintRule):
    code = "RPR007"
    name = "tape-discipline"
    description = (
        "serving/eval/conformal code must not run grad-building Tensor "
        "paths outside no_grad()"
    )
    default_globs = (
        "*serving/*.py",
        "*eval/*.py",
        "*conformal/*.py",
        # The worker-pool module ships one *sanctioned* grad-building call
        # (that is its job); keeping it in scope means any new tape entry
        # point there must be explicitly suppressed and reviewed.
        "*core/parallel.py",
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        tape_names, nn_aliases = self._nn_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._tape_target(node, tape_names, nn_aliases)
            if target is None:
                continue
            if self._in_no_grad(module, node):
                continue
            yield self.violation(
                module,
                node,
                f"grad-building call {target}(...) outside no_grad(): "
                f"inference paths must not grow the autograd tape (wrap "
                f"the block in `with no_grad():` or go through the "
                f"ndarray snapshot forward)",
            )

    # ------------------------------------------------------------------
    def _nn_imports(
        self, tree: ast.Module
    ) -> tuple[frozenset[str], frozenset[str]]:
        """Names imported from repro.nn, and aliases of the nn module."""
        names: set[str] = set()
        modules: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if _is_nn_module(node.module, node.level):
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if alias.name not in _SAFE_NN_NAMES:
                            names.add(local)
                elif node.module is not None and any(
                    alias.name == "nn" for alias in node.names
                ):
                    # "from repro import nn" / "from .. import nn"
                    for alias in node.names:
                        if alias.name == "nn":
                            modules.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[-1] == "nn" or alias.name in (
                        "repro.nn",
                    ):
                        modules.add(alias.asname or alias.name.split(".")[0])
        return frozenset(names), frozenset(modules)

    def _tape_target(
        self,
        node: ast.Call,
        tape_names: frozenset[str],
        nn_aliases: frozenset[str],
    ) -> str | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in tape_names:
            return func.id
        if isinstance(func, ast.Attribute):
            if func.attr in _TAPE_METHODS:
                return func.attr
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in nn_aliases
                and func.attr not in _SAFE_NN_NAMES
            ):
                return f"{func.value.id}.{func.attr}"
        return None

    @staticmethod
    def _in_no_grad(module: SourceModule, node: ast.AST) -> bool:
        for parent in module.ancestors(node):
            if not isinstance(parent, (ast.With, ast.AsyncWith)):
                continue
            for item in parent.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                name = (
                    expr.id
                    if isinstance(expr, ast.Name)
                    else expr.attr
                    if isinstance(expr, ast.Attribute)
                    else None
                )
                if name == "no_grad":
                    return True
        return False
