"""RPR005 — frozen dataclasses stay frozen after construction.

The scenario specs are frozen dataclasses because their content hash is
a cache key: mutate one after construction and every derived
``spec_hash`` / ``component_hash`` silently describes a value that no
longer exists. Python's frozen enforcement has exactly one sanctioned
escape hatch — ``object.__setattr__`` inside ``__post_init__`` (used to
normalize fields during construction, e.g. synchronizing
``trainer.seed`` with ``seeds.train``). Anywhere else it is a mutation
of a value other code believes immutable.

The rule flags ``object.__setattr__`` calls lexically inside a
``@dataclass(frozen=True)`` class body whose enclosing method is not
``__post_init__``. Non-dataclass uses (e.g. the autograd ``Module``
container bypassing its own ``__setattr__``) are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintRule, SourceModule, Violation, register
from .common import dotted_name, is_frozen_dataclass


@register
class FrozenSpecRule(LintRule):
    code = "RPR005"
    name = "frozen-spec-integrity"
    description = (
        "object.__setattr__ on frozen dataclasses is allowed only in "
        "__post_init__; anything later invalidates content hashes"
    )
    default_globs = ("*.py",)

    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            cls = module.enclosing_class(node)
            if cls is None or not is_frozen_dataclass(cls):
                continue
            func = module.enclosing_function(node)
            if func is not None and func.name == "__post_init__":
                continue
            where = f"method {func.name!r}" if func else "class body"
            yield self.violation(
                module,
                node,
                f"object.__setattr__ in {where} of frozen dataclass "
                f"{cls.name!r}: a frozen spec mutated after construction "
                f"invalidates every content hash derived from it — "
                f"normalize in __post_init__ or build a new instance "
                f"with dataclasses.replace()",
            )
