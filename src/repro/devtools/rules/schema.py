"""RPR002 — spec-schema / ``SPEC_SCHEMA_VERSION`` coupling.

Every artifact in the content-addressed store is keyed under
``SPEC_SCHEMA_VERSION``. Changing the shape of the frozen spec
dataclasses (adding, removing, retyping, or re-defaulting a field)
without bumping the version would let stale cached artifacts — keyed
under the old shape — load as if they matched the new semantics.

The rule fingerprints the frozen-dataclass field signatures of
``scenarios/spec.py`` straight from the AST (class name, field name,
annotation, default) and compares both the fingerprint and the version
against a committed golden file (``spec_schema.json`` next to the spec
module). The failure modes:

* fields changed, version unchanged → the silent-staleness bug; bump
  ``SPEC_SCHEMA_VERSION`` *and* regenerate the golden file;
* version bumped, golden not regenerated → half-finished bump;
* golden missing → run ``python -m repro.devtools.lint
  --update-spec-fingerprint`` once and commit the result.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Iterator

from ..engine import LintRule, SourceModule, Violation, register
from .common import is_frozen_dataclass

__all__ = [
    "SpecSchemaRule",
    "spec_schema_signature",
    "spec_schema_fingerprint",
    "write_spec_fingerprint",
    "DEFAULT_FINGERPRINT_NAME",
]

DEFAULT_FINGERPRINT_NAME = "spec_schema.json"
_VERSION_NAME = "SPEC_SCHEMA_VERSION"

_HOW_TO_BUMP = (
    "bump SPEC_SCHEMA_VERSION in the spec module (so old cached "
    "artifacts key as misses, never as garbage) and regenerate the "
    "committed fingerprint: python -m repro.devtools.lint "
    "--update-spec-fingerprint"
)


def spec_schema_signature(tree: ast.Module) -> tuple[int | None, dict]:
    """``(SPEC_SCHEMA_VERSION, {class: [[field, annotation, default]]})``.

    Extracted purely from the AST so the fingerprint never depends on
    runtime imports; ``version`` is ``None`` when the module defines no
    integer ``SPEC_SCHEMA_VERSION``.
    """
    version: int | None = None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == _VERSION_NAME
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    version = node.value.value
    classes: dict[str, list[list[str]]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef) or not is_frozen_dataclass(node):
            continue
        fields: list[list[str]] = []
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            fields.append(
                [
                    stmt.target.id,
                    ast.unparse(stmt.annotation),
                    ast.unparse(stmt.value) if stmt.value is not None else "",
                ]
            )
        classes[node.name] = fields
    return version, classes


def spec_schema_fingerprint(classes: dict) -> str:
    """Stable hex digest of the field-signature table."""
    text = json.dumps(classes, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def write_spec_fingerprint(
    spec_path: Path | str, out_path: Path | str | None = None
) -> Path:
    """Regenerate the committed golden file for ``spec_path``."""
    spec_path = Path(spec_path)
    tree = ast.parse(spec_path.read_text(encoding="utf-8"))
    version, classes = spec_schema_signature(tree)
    if version is None:
        raise ValueError(
            f"{spec_path} defines no integer {_VERSION_NAME}; add one "
            f"before committing a fingerprint"
        )
    out = (
        Path(out_path)
        if out_path is not None
        else spec_path.parent / DEFAULT_FINGERPRINT_NAME
    )
    payload = {
        "comment": (
            "Committed spec-schema fingerprint (repro-lint RPR002). "
            "Regenerate ONLY alongside a SPEC_SCHEMA_VERSION bump: "
            "python -m repro.devtools.lint --update-spec-fingerprint"
        ),
        "schema_version": version,
        "fingerprint": spec_schema_fingerprint(classes),
        "classes": classes,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return out


def _diff_classes(old: dict, new: dict) -> str:
    """Human summary of what changed between two signature tables."""
    changes: list[str] = []
    for name in sorted(set(old) | set(new)):
        if name not in new:
            changes.append(f"class {name} removed")
        elif name not in old:
            changes.append(f"class {name} added")
        elif old[name] != new[name]:
            old_fields = {f[0]: f for f in old[name]}
            new_fields = {f[0]: f for f in new[name]}
            for field in sorted(set(old_fields) | set(new_fields)):
                if field not in new_fields:
                    changes.append(f"{name}.{field} removed")
                elif field not in old_fields:
                    changes.append(f"{name}.{field} added")
                elif old_fields[field] != new_fields[field]:
                    changes.append(f"{name}.{field} changed signature")
    return "; ".join(changes) if changes else "field signatures differ"


@register
class SpecSchemaRule(LintRule):
    code = "RPR002"
    name = "spec-schema-version"
    description = (
        "frozen spec dataclass fields must match the committed "
        "fingerprint; any shape change requires a SPEC_SCHEMA_VERSION bump"
    )
    default_globs = ("*scenarios/spec.py",)

    def check(self, module: SourceModule) -> Iterator[Violation]:
        version, classes = spec_schema_signature(module.tree)
        anchor = module.tree.body[0] if module.tree.body else module.tree
        if version is None:
            yield self.violation(
                module,
                anchor,
                f"spec module defines no integer {_VERSION_NAME}; the "
                f"artifact cache cannot invalidate across schema changes "
                f"without one",
            )
            return
        golden_path = Path(
            self.options.get(
                "fingerprint-file",
                module.path.parent / DEFAULT_FINGERPRINT_NAME,
            )
        )
        if not golden_path.is_file():
            yield self.violation(
                module,
                anchor,
                f"no committed spec-schema fingerprint at {golden_path}; "
                f"generate and commit it: python -m repro.devtools.lint "
                f"--update-spec-fingerprint",
            )
            return
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
        fingerprint = spec_schema_fingerprint(classes)
        if version != golden.get("schema_version"):
            yield self.violation(
                module,
                anchor,
                f"{_VERSION_NAME} is {version} but the committed "
                f"fingerprint records schema "
                f"{golden.get('schema_version')}: the bump is "
                f"half-finished — regenerate the golden file "
                f"(python -m repro.devtools.lint "
                f"--update-spec-fingerprint) and commit both together",
            )
            return
        if fingerprint != golden.get("fingerprint"):
            diff = _diff_classes(golden.get("classes", {}), classes)
            yield self.violation(
                module,
                anchor,
                f"spec dataclass fields changed ({diff}) but "
                f"{_VERSION_NAME} is still {version}: cached artifacts "
                f"keyed under schema {version} would load against the "
                f"new field semantics — {_HOW_TO_BUMP}",
            )
