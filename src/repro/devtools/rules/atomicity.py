"""RPR003 — swap-atomicity in the serving hot path.

The continual-learning hand-off relies on one protocol: everything a
bound computation reads lives in an immutable, generation-tagged
``ServingState``, and promotion is a single atomic attribute store
(``self._state = new_state``). Two code shapes silently break it:

* **Torn reads** — a method that reads ``self._state`` twice can observe
  two different generations (a concurrent ``swap`` between the reads),
  e.g. new head choices resolved against old embeddings. Every method
  must bind the state to a local exactly once and work off that capture.
* **State mutation** — any attribute write on a ``ServingState``
  instance (or a store to ``self._state`` outside the sanctioned
  promotion methods) re-introduces shared mutable state and defeats the
  generation tagging.

The same protocol now spans a process boundary: the sharded router
(``serving/sharded.py``) promotes a ``RouterState`` — published block,
choices, generation — with the identical capture-once / promote-once
discipline, so the rule covers both modules and both state classes.

Options (``[tool.repro-lint.rpr003]``): ``state-attr`` (default
``_state``), ``state-classes`` (class names treated as immutable
generation bundles; default ``ServingState`` and ``RouterState``),
``writers`` (method names allowed to store ``self._state``; default
``__init__`` and ``swap``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintRule, SourceModule, Violation, register
from .common import dotted_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@register
class SwapAtomicityRule(LintRule):
    code = "RPR003"
    name = "swap-atomicity"
    description = (
        "serving methods must capture self._state exactly once; "
        "ServingState/RouterState instances are immutable and promoted "
        "only by sanctioned writers"
    )
    default_globs = ("*serving/service.py", "*serving/sharded.py")

    def __init__(self, options: dict | None = None) -> None:
        super().__init__(options)
        self.state_attr: str = self.options.get("state-attr", "_state")
        # Back-compat: a singular `state-class` narrows the set to one.
        single = self.options.get("state-class")
        self.state_classes: tuple[str, ...] = (
            (single,)
            if single
            else tuple(
                self.options.get(
                    "state-classes", ("ServingState", "RouterState")
                )
            )
        )
        self.state_class: str = self.state_classes[0]
        self.writers: tuple[str, ...] = tuple(
            self.options.get("writers", ("__init__", "swap"))
        )

    # ------------------------------------------------------------------
    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, _FUNCTION_NODES):
                # Check methods only (direct children of a class); reads
                # inside nested helpers count toward the enclosing
                # method, which owns the capture discipline.
                if isinstance(module.parents.get(node), ast.ClassDef):
                    yield from self._check_method(module, node)
        yield from self._check_state_mutations(module)

    # ------------------------------------------------------------------
    def _check_method(
        self, module: SourceModule, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        reads: list[ast.Attribute] = []
        writes: list[ast.AST] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr != self.state_attr:
                continue
            if not (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            ):
                continue
            if isinstance(node.ctx, ast.Load):
                reads.append(node)
            else:
                writes.append(node)
        if len(reads) > 1:
            yield self.violation(
                module,
                reads[1],
                f"method {func.name!r} reads self.{self.state_attr} "
                f"{len(reads)} times; a concurrent swap between reads "
                f"serves a torn generation (e.g. new head choices "
                f"against old embeddings) — bind it once "
                f"(state = self.{self.state_attr}) and read the capture",
            )
        if writes and func.name not in self.writers:
            yield self.violation(
                module,
                writes[0],
                f"method {func.name!r} stores self.{self.state_attr}; "
                f"generation promotion is restricted to "
                f"{', '.join(self.writers)} so every swap installs a "
                f"complete, validated {self.state_class}",
            )

    # ------------------------------------------------------------------
    def _check_state_mutations(
        self, module: SourceModule
    ) -> Iterator[Violation]:
        """Attribute writes on values known to be ServingState instances."""
        state_locals = self._state_bound_names(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if self._is_state_value(target.value, state_locals):
                        yield self._mutation(module, target)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name == "object.__setattr__"
                    and node.args
                    and self._is_state_value(node.args[0], state_locals)
                ):
                    yield self._mutation(module, node)

    def _mutation(self, module: SourceModule, node: ast.AST) -> Violation:
        label = "/".join(self.state_classes)
        return self.violation(
            module,
            node,
            f"attribute write on a {label} instance: serving "
            f"generations are immutable — build a new {label} "
            f"and promote it atomically via swap()",
        )

    def _state_bound_names(self, module: SourceModule) -> frozenset[str]:
        """Local names assigned from ``self._state`` / ``ServingState(...)``."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if self._is_state_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return frozenset(names)

    def _is_state_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == self.state_attr:
            return isinstance(node.value, ast.Name) and node.value.id == "self"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return (
                name is not None
                and name.split(".")[-1] in self.state_classes
            )
        return False

    def _is_state_value(
        self, node: ast.expr, state_locals: frozenset[str]
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in state_locals
        # self._state.attr = ... (a store through the live slot).
        return self._is_state_expr(node)
