"""Baseline files: grandfathered violations for incremental adoption.

A baseline is a JSON list of ``{"path", "code", "message"}`` records;
violations matching a record are reported as *baselined* instead of
failing the run. Lines are deliberately not part of the match — edits
above a grandfathered violation must not un-baseline it. The repo ships
with an empty baseline (zero entries is the acceptance bar); the
machinery exists so a future rule can land before its violations are
all fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .engine import Violation

__all__ = ["Baseline", "load_baseline", "write_baseline"]


@dataclass
class Baseline:
    """Set of grandfathered ``(path, code, message)`` triples."""

    entries: frozenset[tuple[str, str, str]]
    path: Path | None = None

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, violation: Violation) -> bool:
        return (
            violation.path,
            violation.code,
            violation.message,
        ) in self.entries


def load_baseline(path: Path | str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.is_file():
        return Baseline(frozenset(), path=path)
    records = json.loads(path.read_text(encoding="utf-8"))
    entries = frozenset(
        (record["path"], record["code"], record["message"])
        for record in records
    )
    return Baseline(entries, path=path)


def write_baseline(path: Path | str, violations: Iterable[Violation]) -> int:
    """Write ``violations`` as the new baseline; returns the entry count."""
    records = sorted(
        {
            (violation.path, violation.code, violation.message)
            for violation in violations
        }
    )
    payload = [
        {"path": path_, "code": code, "message": message}
        for path_, code, message in records
    ]
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(payload)
