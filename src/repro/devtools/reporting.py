"""Lint output: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from .engine import LintResult

__all__ = ["format_human", "format_json", "JSON_SCHEMA_VERSION"]

#: Bump when the JSON payload shape changes; consumers key on it.
JSON_SCHEMA_VERSION = 1


def format_human(result: LintResult, verbose: bool = False) -> str:
    """``path:line:col CODE message`` rows plus a summary line."""
    rows = [
        f"{v.path}:{v.line}:{v.col} {v.code} {v.message}"
        for v in result.violations
    ]
    counts = result.counts
    if result.violations:
        breakdown = ", ".join(
            f"{code} x{count}" for code, count in counts.items()
        )
        rows.append(
            f"{len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s): {breakdown}"
        )
    else:
        rows.append(f"clean: {result.files_checked} file(s), 0 violations")
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if extras:
        rows.append("(" + ", ".join(extras) + ")")
    if verbose and result.suppressed:
        rows.append("suppressed:")
        rows.extend(
            f"  {v.path}:{v.line} {v.code} {v.message}"
            for v in result.suppressed
        )
    for error in result.errors:
        rows.append(f"error: {error}")
    return "\n".join(rows)


def format_json(result: LintResult) -> str:
    """Stable JSON payload (schema versioned; see tests/devtools)."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "violations": [v.as_dict() for v in result.violations],
        "summary": result.counts,
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
