"""Benchmark regression guard over committed ``BENCH_<name>.json`` files.

The benches under ``benchmarks/`` emit machine-readable metric archives
(see ``benchmarks/conftest.emit``). Absolute throughput numbers move
with the host, so they cannot gate CI — but the *ratio* metrics
(``units == "x"``: sparse-vs-dense speedup, engine-vs-reference speedup,
batched-vs-loop event speedup) are contracts about the code, not the
machine. This module compares a freshly-generated results directory
against the committed baselines and fails when any ratio metric
regresses by more than the tolerance (30% by default — generous enough
for shared-runner noise, tight enough to catch a real perf loss).

Ratio metrics come in two polarities: ``units == "x"`` is
higher-is-better (speedups, shard-scaling factors) and fails when the
value *drops* below ``base × (1 − tol)``; ``units == "x-lower"`` is
lower-is-better (normalized tail-latency ratios like p99/p50 — the
serving tail bench's contract that queueing jitter stays bounded) and
fails when the value *rises* above ``base × (1 + tol)``.

Reader tolerance: only the ``results`` triple list is required of a
``BENCH_*.json``, so schema-v1 archives (no ``schema``/``git_sha``/
``timestamp`` fields) load identically to v2.

Entry point: ``python -m repro.devtools.bench_guard --baseline <dir>
--current <dir>`` (the CI ``bench-smoke`` job).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

__all__ = [
    "DEFAULT_TOLERANCE",
    "load_metrics",
    "compare_metrics",
    "guard_directories",
    "main",
]

#: Maximum tolerated fractional drop of a ratio metric before failing.
DEFAULT_TOLERANCE = 0.30

#: Units marking machine-independent ratio metrics (the guarded kind).
_RATIO_UNITS = frozenset({"x"})

#: Units marking lower-is-better ratio metrics (regress by rising).
_RATIO_LOWER_UNITS = frozenset({"x-lower"})


def load_metrics(path: Path) -> dict[str, tuple[float, str]]:
    """``{metric: (value, units)}`` from a BENCH json of any schema."""
    payload = json.loads(Path(path).read_text())
    return {
        row["name"]: (float(row["value"]), str(row.get("units", "")))
        for row in payload["results"]
    }


def compare_metrics(
    name: str,
    baseline: dict[str, tuple[float, str]],
    current: dict[str, tuple[float, str]],
    tolerance: float,
) -> list[str]:
    """Regression messages for every guarded metric that dropped too far.

    Only ratio metrics present in *both* snapshots are compared: a
    removed metric is an API change for review, not a perf regression,
    and absolute metrics are machine-dependent by nature.
    """
    problems: list[str] = []
    for metric, (base_value, units) in sorted(baseline.items()):
        if metric not in current:
            continue
        cur_value = current[metric][0]
        if units in _RATIO_UNITS:
            floor = base_value * (1.0 - tolerance)
            if cur_value < floor:
                problems.append(
                    f"{name}: {metric} regressed {base_value:.2f}x -> "
                    f"{cur_value:.2f}x (floor {floor:.2f}x at "
                    f"{tolerance:.0%} tolerance)"
                )
        elif units in _RATIO_LOWER_UNITS:
            ceiling = base_value * (1.0 + tolerance)
            if cur_value > ceiling:
                problems.append(
                    f"{name}: {metric} regressed {base_value:.2f}x -> "
                    f"{cur_value:.2f}x (ceiling {ceiling:.2f}x at "
                    f"{tolerance:.0%} tolerance, lower is better)"
                )
    return problems


def guard_directories(
    baseline_dir: Path,
    current_dir: Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[int, list[str]]:
    """Compare every freshly-run bench against its committed baseline.

    Returns ``(n_benches_checked, regression_messages)``. Benches with a
    current result but no baseline are new — nothing to guard; baselines
    without a current run were simply not re-run by this smoke pass.
    """
    checked, problems = 0, []
    for current_path in sorted(Path(current_dir).glob("BENCH_*.json")):
        baseline_path = Path(baseline_dir) / current_path.name
        if not baseline_path.exists():
            continue
        checked += 1
        problems.extend(
            compare_metrics(
                current_path.stem,
                load_metrics(baseline_path),
                load_metrics(current_path),
                tolerance,
            )
        )
    return checked, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-guard", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--baseline", type=Path, required=True,
                        help="directory of committed BENCH_*.json files")
    parser.add_argument("--current", type=Path, required=True,
                        help="directory of freshly-generated results")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="max fractional ratio drop (default 0.30)")
    args = parser.parse_args(argv)

    checked, problems = guard_directories(
        args.baseline, args.current, args.tolerance
    )
    if checked == 0:
        print("bench-guard: no overlapping BENCH_*.json files to check")
        return 2
    for message in problems:
        print(f"REGRESSION {message}")
    print(
        f"bench-guard: {checked} bench(es) checked, "
        f"{len(problems)} regression(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
