"""Paired significance utilities for method comparisons.

The paper reports ±2 standard errors across replicates; when replicate
counts are small (5 in the paper, 2 in the fast grid) a *paired*
comparison — both methods evaluated on the same replicate splits — is far
more sensitive than comparing the two error bars. These helpers implement
the paired bootstrap and the paired sign convention used by the ablation
benches' assertions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PairedComparison", "paired_bootstrap", "two_se", "two_stderr_interval"]


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired bootstrap comparison of A vs B (lower = better)."""

    mean_difference: float          # mean(A − B); negative favours A
    ci_low: float                   # bootstrap CI of the difference
    ci_high: float
    p_a_better: float               # bootstrap Pr(mean(A − B) < 0)
    n_pairs: int

    @property
    def a_significantly_better(self) -> bool:
        """True when the CI excludes zero on the favourable side."""
        return self.ci_high < 0.0


def paired_bootstrap(
    a: np.ndarray,
    b: np.ndarray,
    n_resamples: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> PairedComparison:
    """Bootstrap the mean paired difference of two per-replicate metrics.

    Parameters
    ----------
    a, b:
        Metric values (e.g. MAPE) for methods A and B on the *same*
        replicates, aligned.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("a and b must be aligned 1-D arrays")
    if len(a) < 2:
        raise ValueError("need at least 2 paired replicates")
    diff = a - b
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(diff), size=(n_resamples, len(diff)))
    means = diff[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return PairedComparison(
        mean_difference=float(diff.mean()),
        ci_low=float(np.quantile(means, alpha)),
        ci_high=float(np.quantile(means, 1.0 - alpha)),
        p_a_better=float(np.mean(means < 0.0)),
        n_pairs=len(diff),
    )


def two_se(values, n: int | None = None) -> float | None:
    """2·stderr of the replicate mean; ``None`` when it is undefined.

    A single replicate has no spread estimate — reporting ``0.0`` would
    read as "perfectly tight error bar", so the n<2 case is explicit.
    The one definition of the paper's error-bar width, shared by
    :func:`two_stderr_interval`, the experiment aggregates
    (``ErrorResult``/``TightnessResult``), and the benchmark tables.
    """
    values = np.asarray(values, dtype=np.float64)
    if n is None:
        n = len(values)
    if n < 2:
        return None
    return float(2.0 * values.std(ddof=1) / np.sqrt(n))


def two_stderr_interval(values: np.ndarray) -> tuple[float, float, float]:
    """(mean, low, high) with ±2·stderr — the paper's error bars."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return float("nan"), float("nan"), float("nan")
    mean = float(values.mean())
    half = two_se(values)
    if half is None:
        return mean, mean, mean
    return mean, mean - half, mean + half
