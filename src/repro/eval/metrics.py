"""Evaluation metrics (Sec 5.1).

* **MAPE** — mean absolute percent error of point runtime predictions.
* **Overprovisioning margin** (Eq. 11) — average relative excess of a
  runtime bound over the realized runtime: tightness of the bound.
* **Coverage** — empirical ``Pr(C* ≤ bound)``; the conformal guarantee is
  coverage ≥ 1−ε in expectation over calibration draws.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mape",
    "overprovision_margin",
    "coverage",
    "geometric_mape",
    "split_by_interference",
]


def _validate(pred: np.ndarray, true: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(pred, dtype=np.float64)
    true = np.asarray(true, dtype=np.float64)
    if pred.shape != true.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {true.shape}")
    if np.any(true <= 0):
        raise ValueError("true runtimes must be positive")
    return pred, true


def mape(pred: np.ndarray, true: np.ndarray) -> float:
    """Mean absolute percent error, as a fraction (0.052 = 5.2%)."""
    pred, true = _validate(pred, true)
    if len(true) == 0:
        return float("nan")
    return float(np.mean(np.abs(pred - true) / true))


def geometric_mape(pred: np.ndarray, true: np.ndarray) -> float:
    """Geometric-mean |log error| expressed as a fraction.

    ``exp(mean(|log(pred/true)|)) − 1`` — a symmetric alternative to MAPE
    that matches the log-domain objective; reported by some ablations.
    """
    pred, true = _validate(pred, true)
    if len(true) == 0:
        return float("nan")
    return float(np.exp(np.mean(np.abs(np.log(pred / true)))) - 1.0)


def overprovision_margin(bound: np.ndarray, true: np.ndarray) -> float:
    """Eq. 11: ``E[max(bound − C*, 0) / C*]`` as a fraction.

    Infinite bounds (an uncalibratable pool) propagate to ``inf``.
    """
    bound, true = _validate(bound, true)
    if len(true) == 0:
        return float("nan")
    return float(np.mean(np.maximum(bound - true, 0.0) / true))


def coverage(bound: np.ndarray, true: np.ndarray) -> float:
    """Fraction of observations whose bound was sufficient."""
    bound, true = _validate(bound, true)
    if len(true) == 0:
        return float("nan")
    return float(np.mean(true <= bound))


def split_by_interference(ds) -> tuple[np.ndarray, np.ndarray]:
    """(isolation rows, interference rows) index arrays for a dataset.

    Figs 4–6 report "Without Interference" and "With Interference" test
    metrics separately because the two tasks have different intrinsic
    difficulty (Sec 5.1).
    """
    iso = ds.isolation_mask()
    return np.flatnonzero(iso), np.flatnonzero(~iso)
