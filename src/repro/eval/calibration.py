"""Calibration diagnostics: coverage–ε curves and reliability summaries.

A calibrated bound predictor should realize coverage ≈ 1−ε for *every*
requested ε. These helpers sweep the ε grid and summarize deviations —
the evaluation behind Fig 5's validity premise, exposed as a reusable
diagnostic for deployed predictors.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import coverage, overprovision_margin

__all__ = ["CalibrationCurve", "calibration_curve"]


@dataclass(frozen=True)
class CalibrationCurve:
    """Coverage and tightness across a miscoverage-rate grid."""

    epsilons: tuple[float, ...]
    coverages: tuple[float, ...]
    margins: tuple[float, ...]

    @property
    def max_coverage_shortfall(self) -> float:
        """Worst ``(1 − ε) − coverage`` over the grid (≤ 0 when valid)."""
        return max(
            (1.0 - eps) - cov
            for eps, cov in zip(self.epsilons, self.coverages)
        )

    def is_valid(self, slack: float = 0.02) -> bool:
        """True when every grid point covers to within ``slack``."""
        return self.max_coverage_shortfall <= slack

    def rows(self) -> list[list[str]]:
        """Formatted rows for :func:`repro.eval.format_table`."""
        return [
            [f"{eps:g}", f"{cov:.3f}", f"{1-eps:.3f}", f"{margin:.1%}"]
            for eps, cov, margin in zip(
                self.epsilons, self.coverages, self.margins
            )
        ]


def calibration_curve(
    predictor,
    dataset,
    epsilons: tuple[float, ...] = (0.2, 0.1, 0.05, 0.02, 0.01),
) -> CalibrationCurve:
    """Evaluate a bound predictor across an ε grid on held-out data.

    ``predictor`` must expose ``predict_bound_dataset(ds, epsilon)``; the
    predictor must already be calibrated for every requested ε.
    """
    coverages, margins = [], []
    for eps in epsilons:
        bound = predictor.predict_bound_dataset(dataset, eps)
        coverages.append(coverage(bound, dataset.runtime))
        margins.append(overprovision_margin(bound, dataset.runtime))
    return CalibrationCurve(
        epsilons=tuple(epsilons),
        coverages=tuple(coverages),
        margins=tuple(margins),
    )
