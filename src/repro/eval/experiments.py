"""Replicated experiment harness (Sec 5.1 protocol).

Runs method factories across training-fraction sweeps with independent
replicate splits, reporting MAPE with/without interference (the axes of
Figs 4/6/9/10) and bound-tightness grids (Figs 5/6b/11). Grid sizes are
caller-controlled; benches default to a scaled-down grid and honor
``REPRO_SCALE=full`` for the paper-size protocol.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

import numpy as np

from ..cluster.dataset import RuntimeDataset
from ..cluster.splits import DataSplit, make_split
from .metrics import coverage, mape, overprovision_margin

if TYPE_CHECKING:  # avoid a circular import (conformal uses eval.metrics)
    from ..conformal.predictor import ConformalRuntimePredictor

__all__ = [
    "PointPredictor",
    "ErrorResult",
    "TightnessResult",
    "run_error_experiment",
    "run_tightness_experiment",
    "experiment_scale",
]


class PointPredictor(Protocol):
    """Anything that predicts runtimes in seconds for observation rows."""

    def predict_runtime(
        self,
        w_idx: np.ndarray,
        p_idx: np.ndarray,
        interferers: np.ndarray | None = None,
    ) -> np.ndarray: ...


#: factory(split, replicate_seed) → fitted point predictor
PredictorFactory = Callable[[DataSplit, int], PointPredictor]
#: factory(split, replicate_seed) → calibrated ConformalRuntimePredictor
BoundFactory = Callable[[DataSplit, int], "ConformalRuntimePredictor"]


@dataclass
class ErrorResult:
    """MAPE per (method, train fraction, replicate)."""

    method: str
    train_fraction: float
    replicate: int
    mape_isolation: float
    mape_interference: float

    @staticmethod
    def aggregate(results: list["ErrorResult"]) -> dict[tuple[str, float], dict]:
        """Mean ± 2·stderr per (method, fraction), the papers' error bars."""
        out: dict[tuple[str, float], dict] = {}
        keys = sorted({(r.method, r.train_fraction) for r in results})
        for key in keys:
            rows = [r for r in results if (r.method, r.train_fraction) == key]
            iso = np.array([r.mape_isolation for r in rows])
            intf = np.array([r.mape_interference for r in rows])
            n = max(len(rows), 1)
            out[key] = {
                "mape_isolation": float(iso.mean()),
                "mape_isolation_2se": float(2 * iso.std(ddof=min(1, n - 1)) / np.sqrt(n)),
                "mape_interference": float(intf.mean()),
                "mape_interference_2se": float(2 * intf.std(ddof=min(1, n - 1)) / np.sqrt(n)),
                "n_replicates": n,
            }
        return out


@dataclass
class TightnessResult:
    """Bound tightness per (method, ε, replicate), split by interference."""

    method: str
    train_fraction: float
    epsilon: float
    replicate: int
    margin_isolation: float
    margin_interference: float
    coverage_isolation: float
    coverage_interference: float

    @staticmethod
    def aggregate(
        results: list["TightnessResult"],
    ) -> dict[tuple[str, float, float], dict]:
        out: dict[tuple[str, float, float], dict] = {}
        keys = sorted({(r.method, r.train_fraction, r.epsilon) for r in results})
        for key in keys:
            rows = [
                r
                for r in results
                if (r.method, r.train_fraction, r.epsilon) == key
            ]
            n = max(len(rows), 1)
            mi = np.array([r.margin_isolation for r in rows])
            mf = np.array([r.margin_interference for r in rows])
            out[key] = {
                "margin_isolation": float(mi.mean()),
                "margin_isolation_2se": float(2 * mi.std(ddof=min(1, n - 1)) / np.sqrt(n)),
                "margin_interference": float(mf.mean()),
                "margin_interference_2se": float(2 * mf.std(ddof=min(1, n - 1)) / np.sqrt(n)),
                "coverage_isolation": float(
                    np.mean([r.coverage_isolation for r in rows])
                ),
                "coverage_interference": float(
                    np.mean([r.coverage_interference for r in rows])
                ),
                "n_replicates": n,
            }
        return out


def run_error_experiment(
    dataset: RuntimeDataset,
    methods: dict[str, PredictorFactory],
    train_fractions: Sequence[float],
    n_replicates: int,
    base_seed: int = 0,
) -> list[ErrorResult]:
    """Fig 4/6a protocol: MAPE over methods × fractions × replicates."""
    results: list[ErrorResult] = []
    for fraction in train_fractions:
        for rep in range(n_replicates):
            split = make_split(dataset, fraction, seed=base_seed + 1000 * rep + 7)
            test = split.test
            iso = test.isolation_mask()
            for name, factory in methods.items():
                predictor = factory(split, base_seed + rep)
                pred = predictor.predict_runtime(
                    test.w_idx, test.p_idx, test.interferers
                )
                results.append(
                    ErrorResult(
                        method=name,
                        train_fraction=fraction,
                        replicate=rep,
                        mape_isolation=mape(pred[iso], test.runtime[iso]),
                        mape_interference=mape(pred[~iso], test.runtime[~iso]),
                    )
                )
    return results


def run_tightness_experiment(
    dataset: RuntimeDataset,
    methods: dict[str, BoundFactory],
    epsilons: Sequence[float],
    train_fractions: Sequence[float],
    n_replicates: int,
    base_seed: int = 0,
) -> list[TightnessResult]:
    """Fig 5/6b/11 protocol: margins over methods × ε × replicates."""
    results: list[TightnessResult] = []
    for fraction in train_fractions:
        for rep in range(n_replicates):
            split = make_split(dataset, fraction, seed=base_seed + 1000 * rep + 7)
            test = split.test
            iso = test.isolation_mask()
            for name, factory in methods.items():
                predictor = factory(split, base_seed + rep)
                for eps in epsilons:
                    bound = predictor.predict_bound_dataset(test, eps)
                    results.append(
                        TightnessResult(
                            method=name,
                            train_fraction=fraction,
                            epsilon=eps,
                            replicate=rep,
                            margin_isolation=overprovision_margin(
                                bound[iso], test.runtime[iso]
                            ),
                            margin_interference=overprovision_margin(
                                bound[~iso], test.runtime[~iso]
                            ),
                            coverage_isolation=coverage(
                                bound[iso], test.runtime[iso]
                            ),
                            coverage_interference=coverage(
                                bound[~iso], test.runtime[~iso]
                            ),
                        )
                    )
    return results


def experiment_scale() -> str:
    """Experiment grid scale: "fast" (default) or "full" via REPRO_SCALE."""
    return os.environ.get("REPRO_SCALE", "fast")
