"""Replicated experiment harness (Sec 5.1 protocol).

Runs method factories across training-fraction sweeps with independent
replicate splits, reporting MAPE with/without interference (the axes of
Figs 4/6/9/10) and bound-tightness grids (Figs 5/6b/11). Grid sizes are
caller-controlled; benches default to a scaled-down grid and honor
``REPRO_SCALE=full`` for the paper-size protocol.

Experiments are scenario-aware: ``dataset`` may be a collected
:class:`RuntimeDataset` (legacy), a :class:`~repro.scenarios.ScenarioSpec`,
or a registry name — scenario inputs are collected through the pipeline's
``collect`` stage (cached when ``store`` is given) and replicate splits
follow the scenario's holdout policy, so e.g. the ``cold-start-workloads``
regime flows through Figs 4/5 unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

import numpy as np

from ..cluster.dataset import RuntimeDataset
from ..cluster.splits import DataSplit, make_split
from .metrics import coverage, mape, overprovision_margin
from .significance import two_se

if TYPE_CHECKING:  # avoid a circular import (conformal uses eval.metrics)
    from ..conformal.predictor import ConformalRuntimePredictor
    from ..scenarios.spec import ScenarioSpec

__all__ = [
    "PointPredictor",
    "ErrorResult",
    "TightnessResult",
    "run_error_experiment",
    "run_tightness_experiment",
    "resolve_experiment_input",
    "experiment_scale",
]


class PointPredictor(Protocol):
    """Anything that predicts runtimes in seconds for observation rows."""

    def predict_runtime(
        self,
        w_idx: np.ndarray,
        p_idx: np.ndarray,
        interferers: np.ndarray | None = None,
    ) -> np.ndarray: ...


#: factory(split, replicate_seed) → fitted point predictor
PredictorFactory = Callable[[DataSplit, int], PointPredictor]
#: factory(split, replicate_seed) → calibrated ConformalRuntimePredictor
BoundFactory = Callable[[DataSplit, int], "ConformalRuntimePredictor"]


def resolve_experiment_input(
    dataset: "RuntimeDataset | ScenarioSpec | str",
    store=None,
) -> tuple["ScenarioSpec | None", RuntimeDataset]:
    """Normalize an experiment input to ``(spec | None, dataset)``.

    Accepts a collected dataset (returned as-is, no spec), a
    :class:`~repro.scenarios.ScenarioSpec`, or a scenario registry name.
    Scenario inputs are collected via the pipeline's ``collect`` stage,
    through the artifact cache when ``store`` is given.
    """
    if isinstance(dataset, RuntimeDataset):
        return None, dataset
    # Imported lazily: eval is a leaf dependency of the pipeline package.
    from ..pipeline.stages import run_pipeline
    from ..scenarios.registry import get_scenario

    spec = get_scenario(dataset) if isinstance(dataset, str) else dataset
    result = run_pipeline(spec, store=store, stop_after="collect")
    return spec, result.dataset


def _replicate_split(
    spec: "ScenarioSpec | None",
    dataset: RuntimeDataset,
    fraction: float,
    seed: int,
) -> DataSplit:
    """One replicate partition honoring the scenario's holdout policy."""
    if spec is None:
        return make_split(dataset, fraction, seed=seed)
    from ..pipeline.stages import make_scenario_split

    return make_scenario_split(dataset=dataset, spec=spec,
                               train_fraction=fraction, seed=seed)


@dataclass
class ErrorResult:
    """MAPE per (method, train fraction, replicate)."""

    method: str
    train_fraction: float
    replicate: int
    mape_isolation: float
    mape_interference: float

    @staticmethod
    def aggregate(results: list["ErrorResult"]) -> dict[tuple[str, float], dict]:
        """Mean ± 2·stderr per (method, fraction), the papers' error bars.

        The ``*_2se`` entries are ``None`` when only one replicate exists
        (a single sample has no spread estimate).
        """
        out: dict[tuple[str, float], dict] = {}
        keys = sorted({(r.method, r.train_fraction) for r in results})
        for key in keys:
            rows = [r for r in results if (r.method, r.train_fraction) == key]
            iso = np.array([r.mape_isolation for r in rows])
            intf = np.array([r.mape_interference for r in rows])
            n = len(rows)
            out[key] = {
                "mape_isolation": float(iso.mean()),
                "mape_isolation_2se": two_se(iso, n),
                "mape_interference": float(intf.mean()),
                "mape_interference_2se": two_se(intf, n),
                "n_replicates": n,
            }
        return out


@dataclass
class TightnessResult:
    """Bound tightness per (method, ε, replicate), split by interference."""

    method: str
    train_fraction: float
    epsilon: float
    replicate: int
    margin_isolation: float
    margin_interference: float
    coverage_isolation: float
    coverage_interference: float

    @staticmethod
    def aggregate(
        results: list["TightnessResult"],
    ) -> dict[tuple[str, float, float], dict]:
        """Mean ± 2·stderr per (method, fraction, ε); ``None`` bars at n=1."""
        out: dict[tuple[str, float, float], dict] = {}
        keys = sorted({(r.method, r.train_fraction, r.epsilon) for r in results})
        for key in keys:
            rows = [
                r
                for r in results
                if (r.method, r.train_fraction, r.epsilon) == key
            ]
            n = len(rows)
            mi = np.array([r.margin_isolation for r in rows])
            mf = np.array([r.margin_interference for r in rows])
            out[key] = {
                "margin_isolation": float(mi.mean()),
                "margin_isolation_2se": two_se(mi, n),
                "margin_interference": float(mf.mean()),
                "margin_interference_2se": two_se(mf, n),
                "coverage_isolation": float(
                    np.mean([r.coverage_isolation for r in rows])
                ),
                "coverage_interference": float(
                    np.mean([r.coverage_interference for r in rows])
                ),
                "n_replicates": n,
            }
        return out


def run_error_experiment(
    dataset: "RuntimeDataset | ScenarioSpec | str",
    methods: dict[str, PredictorFactory],
    train_fractions: Sequence[float] | None = None,
    n_replicates: int = 1,
    base_seed: int = 0,
    store=None,
) -> list[ErrorResult]:
    """Fig 4/6a protocol: MAPE over methods × fractions × replicates.

    ``dataset`` may be a scenario (spec or registry name); then
    ``train_fractions`` defaults to the scenario's own fraction and each
    replicate split follows the scenario's holdout policy.
    """
    spec, dataset = resolve_experiment_input(dataset, store=store)
    if train_fractions is None:
        if spec is None:
            raise ValueError("train_fractions is required for raw datasets")
        train_fractions = (spec.split.train_fraction,)
    results: list[ErrorResult] = []
    for fraction in train_fractions:
        for rep in range(n_replicates):
            split = _replicate_split(
                spec, dataset, fraction, seed=base_seed + 1000 * rep + 7
            )
            test = split.test
            iso = test.isolation_mask()
            for name, factory in methods.items():
                predictor = factory(split, base_seed + rep)
                pred = predictor.predict_runtime(
                    test.w_idx, test.p_idx, test.interferers
                )
                results.append(
                    ErrorResult(
                        method=name,
                        train_fraction=fraction,
                        replicate=rep,
                        mape_isolation=mape(pred[iso], test.runtime[iso]),
                        mape_interference=mape(pred[~iso], test.runtime[~iso]),
                    )
                )
    return results


def run_tightness_experiment(
    dataset: "RuntimeDataset | ScenarioSpec | str",
    methods: dict[str, BoundFactory],
    epsilons: Sequence[float],
    train_fractions: Sequence[float] | None = None,
    n_replicates: int = 1,
    base_seed: int = 0,
    store=None,
) -> list[TightnessResult]:
    """Fig 5/6b/11 protocol: margins over methods × ε × replicates.

    Scenario-aware exactly like :func:`run_error_experiment`.
    """
    spec, dataset = resolve_experiment_input(dataset, store=store)
    if train_fractions is None:
        if spec is None:
            raise ValueError("train_fractions is required for raw datasets")
        train_fractions = (spec.split.train_fraction,)
    results: list[TightnessResult] = []
    for fraction in train_fractions:
        for rep in range(n_replicates):
            split = _replicate_split(
                spec, dataset, fraction, seed=base_seed + 1000 * rep + 7
            )
            test = split.test
            iso = test.isolation_mask()
            for name, factory in methods.items():
                predictor = factory(split, base_seed + rep)
                for eps in epsilons:
                    bound = predictor.predict_bound_dataset(test, eps)
                    results.append(
                        TightnessResult(
                            method=name,
                            train_fraction=fraction,
                            epsilon=eps,
                            replicate=rep,
                            margin_isolation=overprovision_margin(
                                bound[iso], test.runtime[iso]
                            ),
                            margin_interference=overprovision_margin(
                                bound[~iso], test.runtime[~iso]
                            ),
                            coverage_isolation=coverage(
                                bound[iso], test.runtime[iso]
                            ),
                            coverage_interference=coverage(
                                bound[~iso], test.runtime[~iso]
                            ),
                        )
                    )
    return results


def experiment_scale() -> str:
    """Experiment grid scale: "fast" (default) or "full" via REPRO_SCALE."""
    return os.environ.get("REPRO_SCALE", "fast")
