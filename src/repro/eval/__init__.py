"""Evaluation: metrics (Sec 5.1), replicated experiment harness, tables."""

from .experiments import (
    ErrorResult,
    TightnessResult,
    experiment_scale,
    resolve_experiment_input,
    run_error_experiment,
    run_tightness_experiment,
)
from .metrics import (
    coverage,
    geometric_mape,
    mape,
    overprovision_margin,
    split_by_interference,
)
from .calibration import CalibrationCurve, calibration_curve
from .significance import (
    PairedComparison,
    paired_bootstrap,
    two_se,
    two_stderr_interval,
)
from .reporting import (
    format_mean_2se,
    format_schedule_table,
    format_series_table,
    format_sweep_table,
    format_table,
    percent,
    percentile,
    percentile_floor,
    tail_percentiles,
)

__all__ = [
    "mape",
    "geometric_mape",
    "overprovision_margin",
    "coverage",
    "split_by_interference",
    "ErrorResult",
    "TightnessResult",
    "run_error_experiment",
    "run_tightness_experiment",
    "resolve_experiment_input",
    "two_se",
    "experiment_scale",
    "format_table",
    "format_series_table",
    "format_schedule_table",
    "format_sweep_table",
    "format_mean_2se",
    "percent",
    "percentile",
    "percentile_floor",
    "tail_percentiles",
    "PairedComparison",
    "paired_bootstrap",
    "two_stderr_interval",
    "CalibrationCurve",
    "calibration_curve",
]
