"""Plain-text result tables for the benchmark harnesses.

Every bench prints the same rows/series its paper figure shows; these
helpers keep the formatting consistent (method × x-axis grids with
mean ± 2·stderr cells, matching the paper's error bars).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_series_table",
    "format_mean_2se",
    "format_schedule_table",
    "format_sweep_table",
    "percent",
    "percentile",
    "percentile_floor",
    "tail_percentiles",
]

#: The latency quantiles every serving bench reports, as (label, q) pairs.
TAIL_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p99", 99.0),
    ("p999", 99.9),
)


def percentile_floor(q: float) -> int:
    """Minimum sample count for the q-th percentile to be data-supported.

    A tail quantile needs at least one observation beyond it to be more
    than an extrapolated max: ``ceil(100 / (100 - q))`` samples puts one
    expected observation in the tail (100 for p99, 1000 for p999). Below
    the floor, reporting "p999" would really be reporting the sample
    maximum with a misleading label.
    """
    if not 0 < q < 100:
        raise ValueError(f"q must be in (0, 100), got {q}")
    # Round before ceiling: 100 - 99.9 is 0.0999… in binary, and the
    # raw quotient 1000.0000000000568 would ceil to a spurious 1001.
    return math.ceil(round(100.0 / (100.0 - q), 9))


def percentile(samples, q: float) -> float:
    """Linear-interpolated q-th percentile with a sample-floor guard.

    Returns ``NaN`` when ``samples`` has fewer than
    :func:`percentile_floor` entries — the serving benches render that
    as ``n/a`` instead of quoting a tail number the data cannot support.
    """
    data = np.asarray(samples, dtype=float)
    if data.size < percentile_floor(q):
        return float("nan")
    return float(np.percentile(data, q, method="linear"))


def tail_percentiles(samples) -> dict[str, float]:
    """p50/p99/p999 of ``samples`` (``NaN`` where under-sampled)."""
    return {label: percentile(samples, q) for label, q in TAIL_QUANTILES}


def percent(value: float, decimals: int = 1) -> str:
    """Format a fraction as a percentage string ("0.052" → "5.2%")."""
    if value != value:  # NaN
        return "n/a"
    if value == float("inf"):
        return "inf"
    return f"{100.0 * value:.{decimals}f}%"


def format_mean_2se(
    mean: float,
    two_se: float | None,
    n_replicates: int | None = None,
    decimals: int = 1,
    as_percent: bool = True,
) -> str:
    """One aggregate cell: ``mean ± 2·stderr (n=R)``.

    ``two_se`` is ``None`` when only one replicate exists (see
    ``ErrorResult.aggregate``); the cell then shows the replicate count
    instead of a fabricated ``±0.0`` error bar, so single-replicate grids
    are visibly single-replicate.
    """
    fmt = percent if as_percent else (lambda v, d=decimals: f"{v:.{d}f}")
    cell = fmt(mean, decimals)
    if two_se is not None:
        cell += f" ± {fmt(two_se, decimals)}"
    if n_replicates is not None:
        cell += f" (n={n_replicates})"
    return cell


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Monospace table with column alignment."""
    columns = [list(col) for col in zip(headers, *rows)]
    widths = [max(len(str(cell)) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_schedule_table(
    adaptive: Sequence[dict],
    static: Sequence[dict],
    epsilon: float,
    multipliers: Sequence[float],
) -> str:
    """The scheduler's violations/utilization table, one row per epoch.

    ``adaptive``/``static`` are per-epoch metric dicts (the
    ``ScheduleReport`` rows): the adaptive scheduler's placement and
    utilization next to both schedulers' budget-violation rates against
    the ε target, plus the serving generation and lifecycle flags.
    """

    def rate(row: dict, key: str) -> str:
        value = row.get(key)
        return "-" if value is None else percent(value)

    rows = []
    for i, row in enumerate(adaptive):
        flags = " ".join(
            name for name in ("reset", "promoted") if row.get(name)
        )
        rows.append([
            str(row["epoch"]),
            f"{multipliers[i]:g}x",
            f"{row['placed']}/{row['arrivals']}",
            percent(row["utilization"]),
            str(row["migrations"]),
            rate(row, "deadline_violation_rate"),
            rate(row, "budget_violation_rate"),
            rate(static[i], "budget_violation_rate"),
            str(row["generation"]),
            flags,
        ])
    return format_table(
        ["epoch", "drift", "placed", "util", "migr",
         "deadline-viol", "budget-viol", "static-viol", "gen", "flags"],
        rows,
        title=(
            f"scheduling epochs (eps={epsilon:g}, budget-violation target "
            f"<= {percent(epsilon)}; static = never recalibrated)"
        ),
    )


def format_sweep_table(
    groups: Sequence,
    metrics: Sequence[str] | None = None,
    title: str | None = None,
    as_percent: bool = True,
) -> str:
    """Replicate-aware sweep comparison table, one row per condition.

    ``groups`` are :class:`repro.sweep.SweepGroup`-shaped values (a
    ``label`` property, an ``n`` count, and a ``metrics`` mapping of
    ``name -> (mean, 2·stderr | None)``). ``metrics`` restricts and
    orders the columns; by default every metric seen across the groups
    appears, in first-appearance order. Missing cells render as ``-``
    so ragged grids (e.g. a scenario without a shared ε) stay readable.
    """
    if metrics is None:
        names: list[str] = []
        for group in groups:
            for name in group.metrics:
                if name not in names:
                    names.append(name)
        metrics = names
    rows = []
    for group in groups:
        cells = [group.label, str(group.n)]
        for name in metrics:
            entry = group.metrics.get(name)
            if entry is None:
                cells.append("-")
            else:
                mean, spread = entry
                cells.append(
                    format_mean_2se(mean, spread, as_percent=as_percent)
                )
        rows.append(cells)
    return format_table(["cell", "n", *metrics], rows, title=title)


def format_series_table(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[str]],
    title: str | None = None,
) -> str:
    """Table with one x-axis column and one column per series.

    The shape of every line-plot figure in the paper: ``series`` maps a
    method name to its per-x formatted values.
    """
    headers = [x_label, *series.keys()]
    rows = [
        [str(x), *(vals[i] for vals in series.values())]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
