"""Pitot — interference-aware edge runtime prediction with conformal
matrix completion (MLSys 2025 reproduction).

Public API tour
---------------
Dataset (simulated heterogeneous WebAssembly cluster, Sec 4)::

    from repro import collect_dataset, make_split
    dataset = collect_dataset(seed=0)          # paper-scale campaign
    split = make_split(dataset, train_fraction=0.5, seed=0)

Point prediction (Secs 3.2–3.4)::

    from repro import PitotConfig, TrainerConfig, train_pitot
    result = train_pitot(split.train, split.calibration)
    seconds = result.model.predict_runtime(w_idx, p_idx, interferers)

Runtime bounds (Sec 3.5)::

    from repro import PAPER_QUANTILES, PitotConfig, ConformalRuntimePredictor
    result = train_pitot(split.train, split.calibration,
                         model_config=PitotConfig(quantiles=PAPER_QUANTILES))
    bounds = (ConformalRuntimePredictor(result.model, PAPER_QUANTILES)
              .calibrate(split.calibration, epsilons=(0.05,))
              .predict_bound(w_idx, p_idx, interferers, epsilon=0.05))

Serving (batched, embedding-cached bound queries)::

    from repro import PredictionService
    service = PredictionService.from_predictor(calibrated_predictor)
    budgets = service.predict_bound(w_idx, p_idx, interferers, epsilon=0.05)

Scenarios + pipeline (one declarative path, cached stage-by-stage)::

    from repro import run_pipeline
    result = run_pipeline("paper", store=".repro-cache")
    service = result.service()      # warm re-runs execute zero stages

Continual learning (streaming ingest → warm update → rolling
recalibration → atomic swap)::

    from repro import run_lifecycle
    outcome = run_lifecycle(spec, dataset, result.model, result.predictor)
    outcome.coverage_by_phase()     # adaptive vs never-recalibrated

Sub-packages: :mod:`repro.nn` (autograd substrate), :mod:`repro.workloads`,
:mod:`repro.platforms`, :mod:`repro.cluster` (simulator), :mod:`repro.core`
(Pitot), :mod:`repro.scenarios` (named campaign registry),
:mod:`repro.pipeline` (staged, cached scenario pipeline),
:mod:`repro.lifecycle` (continual-learning loop), :mod:`repro.conformal`,
:mod:`repro.serving`, :mod:`repro.baselines`, :mod:`repro.eval`,
:mod:`repro.analysis`.
"""

from .baselines import (
    AttentionBaseline,
    BaselineTrainer,
    MatrixFactorizationBaseline,
    NeuralNetworkBaseline,
)
from .cluster import (
    ClusterCollector,
    CollectionConfig,
    DataSplit,
    GroundTruthPerformanceModel,
    ObservationBuffer,
    PerformanceModelConfig,
    RuntimeDataset,
    collect_dataset,
    make_cluster,
    make_split,
    replicate_splits,
)
from .conformal import ConformalRuntimePredictor, OnlineConformalizer, conformal_offset
from .core import (
    PAPER_QUANTILES,
    EmbeddingSnapshot,
    LinearScalingBaseline,
    PitotConfig,
    PitotModel,
    PitotTrainer,
    TrainerConfig,
    TrainingResult,
    train_pitot,
)
from .core.serialization import load_model, save_model
from .eval import coverage, mape, overprovision_margin
from .orchestration import (
    AdmissionController,
    BudgetOracle,
    ClusterSimulator,
    FleetWorld,
    PlacementProblem,
    ScheduleReport,
    flow_placement,
    greedy_placement,
)
from .lifecycle import (
    DriftTrace,
    LifecycleManager,
    make_drift_trace,
    run_lifecycle,
)
from .pipeline import ArtifactStore, PipelineResult, run_pipeline
from .scenarios import (
    DriftSpec,
    ScenarioSpec,
    SchedulingSpec,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario,
    scenario_names,
)
from .serving import PredictionService

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # cluster / data
    "RuntimeDataset",
    "GroundTruthPerformanceModel",
    "PerformanceModelConfig",
    "ClusterCollector",
    "CollectionConfig",
    "collect_dataset",
    "make_cluster",
    "DataSplit",
    "make_split",
    "replicate_splits",
    "ObservationBuffer",
    # core
    "PitotConfig",
    "TrainerConfig",
    "PitotModel",
    "PitotTrainer",
    "TrainingResult",
    "train_pitot",
    "LinearScalingBaseline",
    "PAPER_QUANTILES",
    "save_model",
    "load_model",
    # scenarios / pipeline
    "ScenarioSpec",
    "DriftSpec",
    "SchedulingSpec",
    "scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "ArtifactStore",
    "PipelineResult",
    "run_pipeline",
    # lifecycle
    "DriftTrace",
    "make_drift_trace",
    "LifecycleManager",
    "run_lifecycle",
    # conformal
    "ConformalRuntimePredictor",
    "OnlineConformalizer",
    "conformal_offset",
    # serving
    "EmbeddingSnapshot",
    "PredictionService",
    # baselines
    "MatrixFactorizationBaseline",
    "NeuralNetworkBaseline",
    "AttentionBaseline",
    "BaselineTrainer",
    # orchestration
    "BudgetOracle",
    "PlacementProblem",
    "greedy_placement",
    "flow_placement",
    "AdmissionController",
    "FleetWorld",
    "ClusterSimulator",
    "ScheduleReport",
    # metrics
    "mape",
    "overprovision_margin",
    "coverage",
]
