"""Event-driven fleet scheduling on continually-recalibrated budgets.

The paper's Sec 1 story run forward in time: jobs stream into a
co-located fleet, a scheduler places each one so its deadline holds with
probability 1−ε, and the realized runtimes stream back as observations.
:class:`ClusterSimulator` is the discrete-event loop that closes that
circle:

* **Events** — job arrivals, job completions, and epoch boundaries flow
  through one time-ordered heap; completions free capacity the moment
  they land, and every placement decision sees the cluster exactly as it
  is at decision time.
* **Policies** — pluggable: budget-aware ``greedy`` (tightest feasible
  fit via one :class:`~repro.orchestration.BudgetOracle` batch per
  decision), epoch-batched ``flow`` (min-cost-flow placement into the
  occupied cluster), single-platform ``admission``, and the
  budget-blind ``random`` / ``utilization`` baselines.
* **Migration** — at each epoch boundary, running jobs whose remaining
  work no longer fits their deadline under the *current* generation's
  budgets are moved to a platform where it does.
* **Lifecycle** — pass a :class:`~repro.lifecycle.LifecycleManager` and
  the loop ingests every completed job's observation, then periodically
  warm-updates, recalibrates, and atomically promotes a new serving
  generation — drift flows from the fleet into the scheduler's budgets
  with no offline step.

Ground truth comes from :class:`FleetWorld`, a surrogate generative
model fit on a collected dataset (additive log runtime + per-degree
interference inflation + lognormal noise), scaled by a per-epoch drift
multiplier. A job's realized runtime is sampled once at placement
against its placement-time co-residents (a deliberate simplification:
the interference set at start defines the rate), and re-sampled
pro-rata on migration.

Two violation notions are scored per completion:

* ``deadline`` — realized duration exceeded the job's requested
  deadline (an SLO miss);
* ``budget`` — realized duration exceeded the ε-budget the scheduler
  quoted at placement. This is the conformal commitment: a calibrated
  scheduler holds it at rate ≈ ε, and a stale one silently breaks it —
  the fleet-scale analogue of the lifecycle coverage story.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..cluster.dataset import MAX_INTERFERERS, RuntimeDataset, pad_interferers
from ..conformal.predictor import interference_pools
from ..core.scaling import LinearScalingBaseline
from ..scenarios.spec import SCHEDULER_POLICIES, SchedulingSpec
from .oracle import BudgetOracle
from .placement import MAX_RESIDENTS, PlacementProblem, flow_placement

__all__ = [
    "FleetWorld",
    "SimJob",
    "EpochStats",
    "SimulationResult",
    "ScheduleReport",
    "ClusterSimulator",
    "epoch_multipliers",
    "world_calibration_window",
    "build_schedule_report",
]

# Heap ordering at equal timestamps: completions free capacity before
# arrivals claim it; epoch hooks run after the epoch's last event.
_COMPLETION, _ARRIVAL, _EPOCH_END = 0, 1, 2


@dataclass
class FleetWorld:
    """Surrogate ground truth for simulation, fit from a collected dataset.

    ``log runtime = w_base[w] + p_base[p] + degree_offsets[d-1] + σ·z``,
    times the active drift multiplier — the additive-log structure of
    the paper's linear-scaling baseline (App B.1) plus an empirical
    per-interference-degree inflation and lognormal noise, all estimated
    from the dataset the predictor was trained on. Deterministic given a
    generator.
    """

    w_base: np.ndarray
    p_base: np.ndarray
    #: Log-space inflation per interference degree (index ``degree - 1``).
    degree_offsets: np.ndarray
    sigma: float

    @classmethod
    def from_dataset(cls, dataset: RuntimeDataset) -> "FleetWorld":
        """Fit the surrogate on a dataset (isolation-first, like App B.1)."""
        baseline = LinearScalingBaseline(
            dataset.n_workloads, dataset.n_platforms
        )
        iso = dataset.isolation_mask()
        baseline.fit(
            dataset.w_idx[iso],
            dataset.p_idx[iso],
            dataset.log_runtime[iso],
            fallback=(dataset.w_idx, dataset.p_idx, dataset.log_runtime),
        )
        residual = dataset.log_runtime - baseline.predict(
            dataset.w_idx, dataset.p_idx
        )
        degrees = interference_pools(
            dataset.interferers, dataset.n_observations
        )
        offsets = np.zeros(MAX_RESIDENTS)
        for degree in range(1, MAX_RESIDENTS + 1):
            mask = degrees == degree
            if mask.any():
                offsets[degree - 1] = float(residual[mask].mean())
        sigma = float(np.std(residual - offsets[degrees - 1]))
        return cls(
            w_base=baseline.w_bar,
            p_base=baseline.p_bar,
            degree_offsets=offsets,
            sigma=max(sigma, 1e-6),
        )

    @property
    def n_workloads(self) -> int:
        return len(self.w_base)

    @property
    def n_platforms(self) -> int:
        return len(self.p_base)

    def log_mean(self, workload: int, platform: int, n_co: int) -> float:
        """Mean log runtime for ``workload`` on ``platform`` with
        ``n_co`` co-residents (no noise, no drift)."""
        degree = min(1 + n_co, MAX_RESIDENTS)
        return float(
            self.w_base[workload]
            + self.p_base[platform]
            + self.degree_offsets[degree - 1]
        )

    def sample(
        self,
        workload: int,
        platform: int,
        n_co: int,
        multiplier: float,
        rng: np.random.Generator,
    ) -> float:
        """One realized runtime draw (seconds) under ``multiplier`` drift."""
        z = rng.standard_normal()
        return float(
            np.exp(self.log_mean(workload, platform, n_co) + self.sigma * z)
            * multiplier
        )

    def sample_batch(
        self,
        workloads: np.ndarray,
        platforms: np.ndarray,
        n_co: np.ndarray,
        multiplier: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized :meth:`sample` over row arrays — one RNG array draw.

        Bitwise-identical to calling :meth:`sample` once per row in
        order: ``Generator.standard_normal(n)`` consumes the stream
        exactly as ``n`` scalar draws do, and the elementwise arithmetic
        keeps the scalar path's association
        (``(w + p) + offset``, ``exp(mean + σz) · m``).
        """
        w = np.asarray(workloads, dtype=np.intp)
        p = np.asarray(platforms, dtype=np.intp)
        degree = np.minimum(1 + np.asarray(n_co, dtype=np.intp), MAX_RESIDENTS)
        z = rng.standard_normal(w.size)
        mean = self.w_base[w] + self.p_base[p] + self.degree_offsets[degree - 1]
        return np.exp(mean + self.sigma * z) * multiplier

    def reference_runtime(self, workload: int) -> float:
        """Deadline anchor: expected isolation runtime on a median platform."""
        p_ref = float(np.median(self.p_base)) if self.n_platforms else 0.0
        return float(
            np.exp(self.w_base[workload] + p_ref + self.degree_offsets[0])
        )

    def mean_runtime(self) -> float:
        """Expected slot-time per job (epoch sizing).

        The arithmetic mean service time over a uniform (workload,
        platform) draw — separable as ``E[e^w]·E[e^p]`` — including the
        lognormal noise moment and a light (2-way) co-location
        inflation. Slots are occupied for realized runtimes, so offered
        load must be budgeted against this mean, not the (much smaller)
        geometric one.
        """
        if not self.n_workloads:
            return 1.0
        w = float(np.mean(np.exp(self.w_base)))
        # Budget-aware schedulers concentrate placements on the faster
        # platforms (tightest feasible fit), so the lower-quartile
        # platform speed approximates the slot a job actually lands on
        # far better than the fleet mean.
        p = (
            float(np.quantile(np.exp(self.p_base), 0.25))
            if self.n_platforms
            else 1.0
        )
        return w * p * float(
            np.exp(self.sigma**2 / 2.0 + self.degree_offsets[1])
        )


@dataclass
class SimJob:
    """One job's life through the simulation."""

    job_id: int
    workload: int
    arrival: float
    slack: float
    deadline: float = float("nan")  #: duration allowance (seconds)
    platform: int | None = None
    quote: float = float("nan")  #: ε-budget quoted at placement
    start: float = float("nan")
    completion: float = float("nan")
    #: Realized full-job duration on the current platform (pro-rata base
    #: for migration).
    runtime_current: float = float("nan")
    #: Co-resident workloads at (last) placement — the interference set
    #: the realized runtime was drawn under.
    placed_co: tuple[int, ...] = ()
    migrations: int = 0
    completed: bool = False
    deadline_violated: bool = False
    budget_violated: bool = False


@dataclass
class EpochStats:
    """One epoch's scheduler metrics (a row of the violations table)."""

    epoch: int
    multiplier: float
    arrivals: int = 0
    placed: int = 0
    rejected: int = 0
    completions: int = 0
    deadline_violations: int = 0
    budget_violations: int = 0
    migrations: int = 0
    #: Occupied slots / total slots at the epoch boundary.
    utilization: float = 0.0
    #: Wall-clock spent inside policy decisions (provenance metric; the
    #: only non-deterministic field).
    decision_seconds: float = 0.0
    decisions: int = 0
    generation: int = 0
    promoted: bool = False
    reset: bool = False

    def as_dict(self) -> dict:
        out = asdict(self)
        out["placement_rate"] = (
            self.placed / self.arrivals if self.arrivals else None
        )
        out["deadline_violation_rate"] = (
            self.deadline_violations / self.completions
            if self.completions
            else None
        )
        out["budget_violation_rate"] = (
            self.budget_violations / self.completions
            if self.completions
            else None
        )
        return out


@dataclass
class SimulationResult:
    """Everything one :meth:`ClusterSimulator.run` produced."""

    policy: str
    epsilon: float
    epochs: list[EpochStats] = field(default_factory=list)
    #: Deterministic event trace: ``(kind, time, *details)`` tuples.
    events: list[tuple] = field(default_factory=list)
    jobs: list[SimJob] = field(default_factory=list)

    def totals(self) -> dict:
        """Whole-run aggregates over the epoch rows."""
        arrivals = sum(e.arrivals for e in self.epochs)
        placed = sum(e.placed for e in self.epochs)
        completions = sum(e.completions for e in self.epochs)
        decisions = sum(e.decisions for e in self.epochs)
        seconds = sum(e.decision_seconds for e in self.epochs)
        return {
            "arrivals": arrivals,
            "placed": placed,
            "completions": completions,
            "placement_rate": placed / arrivals if arrivals else None,
            "deadline_violation_rate": (
                sum(e.deadline_violations for e in self.epochs) / completions
                if completions
                else None
            ),
            "budget_violation_rate": (
                sum(e.budget_violations for e in self.epochs) / completions
                if completions
                else None
            ),
            "migrations": sum(e.migrations for e in self.epochs),
            "promotions": sum(1 for e in self.epochs if e.promoted),
            "mean_decision_ms": (
                1e3 * seconds / decisions if decisions else None
            ),
            "decisions_per_second": (
                decisions / seconds if seconds > 0 else None
            ),
        }

    def violation_rate(
        self, epochs: list[int] | None = None, kind: str = "budget"
    ) -> float | None:
        """Violations / completions over ``epochs`` (all when ``None``)."""
        rows = [
            e for e in self.epochs if epochs is None or e.epoch in epochs
        ]
        completions = sum(e.completions for e in rows)
        if not completions:
            return None
        key = (
            "budget_violations" if kind == "budget" else "deadline_violations"
        )
        return sum(getattr(e, key) for e in rows) / completions


def epoch_multipliers(drift, n_epochs: int) -> list[float]:
    """Per-epoch drift multiplier: the spec's phases spread evenly over
    the horizon (all ``1.0`` when the spec has no drift stream)."""
    if drift is None or not drift.enabled:
        return [1.0] * n_epochs
    phases = drift.phases
    return [
        float(phases[min(e * len(phases) // max(n_epochs, 1), len(phases) - 1)])
        for e in range(n_epochs)
    ]


def world_calibration_window(
    world: FleetWorld,
    dataset: RuntimeDataset,
    n_events: int,
    multiplier: float,
    seed: int,
) -> RuntimeDataset:
    """A calibration window drawn from the *world*, not the trace.

    Re-samples (workload, platform, interferer) rows from the dataset
    and replaces their runtimes with world draws at ``multiplier`` — the
    observations a deployment would have collected before the horizon
    starts. Calibrating on this window puts both the static and the
    adaptive scheduler in honest ε-coverage against the world at epoch
    0; everything after that is drift.
    """
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, dataset.n_observations, size=n_events)
    degrees = interference_pools(dataset.interferers[rows], n_events)
    runtime = world.sample_batch(
        dataset.w_idx[rows], dataset.p_idx[rows], degrees - 1, multiplier, rng
    )
    return RuntimeDataset(
        w_idx=dataset.w_idx[rows],
        p_idx=dataset.p_idx[rows],
        interferers=dataset.interferers[rows],
        runtime=runtime,
        workload_features=dataset.workload_features,
        platform_features=dataset.platform_features,
    )


class ClusterSimulator:
    """Discrete-event fleet scheduler simulation (see module docs).

    Parameters
    ----------
    world:
        Ground-truth runtime generator.
    service:
        ``predict_bound`` provider the scheduler quotes from. Ignored
        (and may be ``None``) when ``lifecycle`` is given — the
        manager's live service is used so promotions reach the
        scheduler atomically.
    scheduling:
        The :class:`~repro.scenarios.SchedulingSpec` knobs (policy,
        horizon, arrival volume, slack, migration, cadence).
    epsilon:
        Miscoverage rate of every quoted budget.
    multipliers:
        Per-epoch drift multiplier (length ``scheduling.epochs``;
        see :func:`epoch_multipliers`).
    seed:
        Drives the arrival schedule, world noise, and policy/update
        randomness (four independent streams).
    lifecycle:
        Optional :class:`~repro.lifecycle.LifecycleManager`: completed
        observations are ingested and every ``recalibrate_every`` epochs
        the loop warm-updates, recalibrates, and promotes.
    update_steps:
        Warm-start gradient steps per lifecycle update burst.
    reset_miscoverage:
        Change-point guard (as in the lifecycle replay): when an epoch's
        budget-violation rate exceeds ``reset_miscoverage × ε`` the
        rolling window is cleared before ingesting, so the next
        recalibration keys on the new regime. ``None`` disables.
    probe_source:
        Dataset supplying the (workload, platform, interferer) row mix
        the profiling sidecar samples (``scheduling.probes_per_epoch``
        world draws per epoch, at the epoch's drift multiplier).
        Completed jobs alone are a length-biased calibration sample —
        the probes restore the uncensored view. Required when
        ``probes_per_epoch > 0`` and a lifecycle is attached.
    batch_events:
        ``True`` (default) runs the batched epoch-event path: migration
        screening quotes are scored in one :meth:`BudgetOracle.budgets`
        batch across all co-resident platforms, probe draws use
        :meth:`FleetWorld.sample_batch`, and the open-platform scan
        reads an incrementally-maintained occupancy array. ``False``
        replays the historical per-platform Python loops — the
        reference the trace-parity tests compare against.
    """

    def __init__(
        self,
        world: FleetWorld,
        service,
        scheduling: SchedulingSpec,
        *,
        epsilon: float,
        multipliers: list[float] | None = None,
        seed: int = 0,
        lifecycle=None,
        update_steps: int = 100,
        reset_miscoverage: float | None = None,
        probe_source: RuntimeDataset | None = None,
        batch_events: bool = True,
    ) -> None:
        if scheduling.policy not in SCHEDULER_POLICIES:
            raise ValueError(
                f"unknown policy {scheduling.policy!r}; "
                f"known: {SCHEDULER_POLICIES}"
            )
        self.world = world
        self.scheduling = scheduling
        self.lifecycle = lifecycle
        self.service = lifecycle.service if lifecycle is not None else service
        if self.service is None:
            raise ValueError("either service or lifecycle is required")
        self.epsilon = float(epsilon)
        self.multipliers = (
            [1.0] * scheduling.epochs if multipliers is None else multipliers
        )
        if len(self.multipliers) != scheduling.epochs:
            raise ValueError(
                f"need one multiplier per epoch "
                f"({len(self.multipliers)} != {scheduling.epochs})"
            )
        self.update_steps = update_steps
        self.reset_miscoverage = reset_miscoverage
        self.probe_source = probe_source
        if (
            lifecycle is not None
            and scheduling.probes_per_epoch > 0
            and probe_source is None
        ):
            raise ValueError(
                "probes_per_epoch > 0 needs a probe_source dataset"
            )
        self.seed = seed
        self.batch_events = bool(batch_events)
        self.oracle = BudgetOracle(self.service, self.epsilon)
        self.epoch_seconds = self._epoch_seconds()

    # ------------------------------------------------------------------
    # Schedule generation
    # ------------------------------------------------------------------
    def _epoch_seconds(self) -> float:
        """Epoch length targeting ``scheduling.load`` slot utilization."""
        sched = self.scheduling
        capacity = self.world.n_platforms * sched.max_residents
        mean = self.world.mean_runtime() if self.world.n_workloads else 1.0
        if capacity == 0 or sched.jobs_per_epoch == 0:
            return max(mean, 1e-9)
        return max(
            sched.jobs_per_epoch * mean / (capacity * sched.load), 1e-9
        )

    def _arrival_schedule(self, rng: np.random.Generator) -> list[SimJob]:
        """Every arrival of the horizon, pre-drawn (policy-independent)."""
        sched = self.scheduling
        jobs: list[SimJob] = []
        lo, hi = sched.deadline_slack
        for epoch in range(sched.epochs):
            base = epoch * self.epoch_seconds
            offsets = np.sort(rng.random(sched.jobs_per_epoch))
            workloads = rng.integers(
                0, max(self.world.n_workloads, 1), size=sched.jobs_per_epoch
            )
            slacks = rng.uniform(lo, hi, size=sched.jobs_per_epoch)
            for i in range(sched.jobs_per_epoch):
                jobs.append(
                    SimJob(
                        job_id=len(jobs),
                        workload=int(workloads[i]),
                        arrival=float(base + offsets[i] * self.epoch_seconds),
                        slack=float(slacks[i]),
                    )
                )
        return jobs

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Play the horizon; returns per-epoch metrics + event trace."""
        sched = self.scheduling
        arrival_rng = np.random.default_rng(self.seed)
        self._world_rng = np.random.default_rng(self.seed + 1)
        self._policy_rng = np.random.default_rng(self.seed + 2)
        update_rng = np.random.default_rng(self.seed + 3)
        self._probe_rng = np.random.default_rng(self.seed + 4)

        jobs = self._arrival_schedule(arrival_rng)
        result = SimulationResult(
            policy=sched.policy, epsilon=self.epsilon, jobs=jobs
        )
        self._result = result
        self._stats = [
            EpochStats(epoch=e, multiplier=self.multipliers[e])
            for e in range(sched.epochs)
        ]
        result.epochs = self._stats
        self._residents: dict[int, list[int]] = {
            p: [] for p in range(self.world.n_platforms)
        }
        #: Incremental occupancy: ``len(self._residents[p])`` for all p,
        #: maintained at the three mutation points (start / completion /
        #: migration) so the per-arrival open-platform scan is one
        #: vectorized comparison instead of a Python comprehension.
        self._n_res = np.zeros(self.world.n_platforms, dtype=np.intp)
        #: Resident workloads / deadlines per platform slot, kept in
        #: resident-*list* order (removals shift left) so rows read back
        #: exactly the co-tuples ``_co_workloads`` would build. ``-1`` /
        #: ``inf`` padded; the batched candidate scan slices these
        #: directly instead of rebuilding tuples per decision.
        self._res_w = np.full(
            (self.world.n_platforms, MAX_RESIDENTS), -1, dtype=np.intp
        )
        self._res_dl = np.full((self.world.n_platforms, MAX_RESIDENTS), np.inf)
        #: Per-workload scratch for the candidate scan's deadline map.
        self._dl_scratch = np.full(max(self.world.n_workloads, 1), np.inf)
        #: Per-workload deadline anchors (the `reference_runtime` scalar
        #: path recomputes a median per arrival; same floats).
        p_ref = (
            float(np.median(self.world.p_base))
            if self.world.n_platforms
            else 0.0
        )
        self._ref_runtimes = (
            np.exp(self.world.w_base + p_ref + self.world.degree_offsets[0])
            if self.world.n_workloads
            else np.empty(0)
        )
        self._jobs = {job.job_id: job for job in jobs}
        self._flow_queue: list[SimJob] = []
        self._pending_obs: list[tuple[int, int, tuple[int, ...], float]] = []
        self._epoch_completions = 0
        self._epoch_budget_violations = 0

        heap: list[tuple[float, int, int, int]] = []
        seq = 0
        for job in jobs:
            heapq.heappush(heap, (job.arrival, _ARRIVAL, seq, job.job_id))
            seq += 1
        for epoch in range(sched.epochs):
            heapq.heappush(
                heap,
                ((epoch + 1) * self.epoch_seconds, _EPOCH_END, seq, epoch),
            )
            seq += 1

        while heap:
            t, kind, _, payload = heapq.heappop(heap)
            if kind == _COMPLETION:
                self._on_completion(t, self._jobs[payload])
            elif kind == _ARRIVAL:
                seq = self._on_arrival(t, self._jobs[payload], heap, seq)
            else:
                seq = self._on_epoch_end(t, payload, heap, seq, update_rng)
        return result

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _epoch_of(self, t: float) -> int:
        return min(
            int(t / self.epoch_seconds), self.scheduling.epochs - 1
        )

    def _multiplier_at(self, t: float) -> float:
        return self.multipliers[self._epoch_of(t)]

    def _co_workloads(self, platform: int, skip: int | None = None) -> list[int]:
        return [
            self._jobs[j].workload
            for j in self._residents[platform]
            if j != skip
        ]

    def _resident_deadlines(self, platform: int) -> dict[int, float]:
        """Workload → deadline for revalidation (min on collisions)."""
        out: dict[int, float] = {}
        for job_id in self._residents[platform]:
            job = self._jobs[job_id]
            prev = out.get(job.workload)
            if prev is None or job.deadline < prev:
                out[job.workload] = job.deadline
        return out

    def _on_arrival(self, t: float, job: SimJob, heap, seq: int) -> int:
        stats = self._stats[self._epoch_of(t)]
        stats.arrivals += 1
        if not self.world.n_workloads:
            job.deadline = job.slack
        elif self.batch_events:
            # Same floats as reference_runtime(): the anchor vector is
            # precomputed once instead of re-deriving a median per job.
            job.deadline = (
                job.slack
                * float(self._ref_runtimes[job.workload])
                * self._multiplier_at(t)
            )
        else:
            job.deadline = (
                job.slack
                * self.world.reference_runtime(job.workload)
                * self._multiplier_at(t)
            )
        self._result.events.append(
            ("arrival", t, job.job_id, job.workload)
        )
        if self.scheduling.policy == "flow":
            # Batch scheduling: placed together at the epoch boundary.
            self._flow_queue.append(job)
            return seq
        started = time.perf_counter()
        platform = self._decide(job)
        stats.decision_seconds += time.perf_counter() - started
        stats.decisions += 1
        if platform is None:
            stats.rejected += 1
            self._result.events.append(("reject", t, job.job_id))
            return seq
        return self._start(t, job, platform, heap, seq,
                           epoch=self._epoch_of(t))

    def _open_platforms(self) -> list[int]:
        """Platforms with spare capacity, ascending.

        The batched path reads the occupancy array (one C-level
        comparison); the reference path replays the historical
        comprehension. Identical output by the ``_n_res`` invariant.
        """
        if self.batch_events:
            return np.flatnonzero(
                self._n_res < self.scheduling.max_residents
            ).tolist()
        return [
            p
            for p in range(self.world.n_platforms)
            if len(self._residents[p]) < self.scheduling.max_residents
        ]

    def _decide(self, job: SimJob) -> int | None:
        """One placement decision under the active policy."""
        policy = self.scheduling.policy
        open_platforms = self._open_platforms()
        if not open_platforms:
            return None
        if policy == "random":
            choice = int(
                open_platforms[self._policy_rng.integers(len(open_platforms))]
            )
            job.quote = self.oracle.budget(
                job.workload, choice, self._co_workloads(choice)
            )
            return choice
        if policy == "utilization":
            choice = min(open_platforms, key=lambda p: len(self._residents[p]))
            job.quote = self.oracle.budget(
                job.workload, choice, self._co_workloads(choice)
            )
            return choice
        if policy == "admission":
            # The job arrives at one platform; admit or reject there.
            target = int(self._policy_rng.integers(self.world.n_platforms))
            if target not in open_platforms:
                return None
            candidates = [target]
        else:  # greedy
            candidates = open_platforms
        if self.batch_events:
            budgets, reval_ok = self._scan_candidates(job.workload, candidates)
            feasible = (budgets <= job.deadline) & reval_ok
            if not feasible.any():
                return None
            best = int(np.argmin(np.where(feasible, budgets, np.inf)))
            job.quote = float(budgets[best])
            return int(candidates[best])
        residents = {p: self._co_workloads(p) for p in candidates}
        deadlines: dict[int, float] = {}
        for p in candidates:
            for workload, deadline in self._resident_deadlines(p).items():
                prev = deadlines.get(workload)
                if prev is None or deadline < prev:
                    deadlines[workload] = deadline
        checks = self.oracle.check_candidates(
            job.workload, job.deadline, candidates, residents, deadlines
        )
        best, best_budget = None, np.inf
        for check in checks:
            if check.feasible and check.budget < best_budget:
                best, best_budget = check.platform, check.budget
        if best is None:
            return None
        job.quote = float(best_budget)
        return best

    def _scan_candidates(
        self, workload: int, candidates: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized candidate scan over *open* platforms.

        Returns ``(budgets, reval_ok)``: the job's ε-budget on each
        candidate and whether every prospective co-resident's
        revalidated budget stays within its deadline (the global
        per-workload minimum across the candidate set, exactly as the
        reference path's merged ``deadlines`` dict). One
        ``predict_bound`` batch; rows are sliced from the incremental
        slot matrices instead of rebuilt as tuples.
        """
        C = np.asarray(candidates, dtype=np.intp)
        k = self._n_res[C]
        n_c = len(C)
        # Job rows: the arriving workload among each candidate's
        # residents. Open platforms hold <= MAX_RESIDENTS - 1 co-
        # residents, so the first MAX_INTERFERERS slots carry them all.
        co_job = self._res_w[C][:, :MAX_INTERFERERS]
        n_rev = int(k.sum())
        if n_rev:
            # Revalidation rows: resident i on platform p sees its
            # co-residents minus itself, plus the arriving job —
            # list-order preserved, exactly `_candidate_rows`.
            p_rev = np.repeat(C, k)
            ii = np.arange(n_rev) - np.repeat(np.cumsum(k) - k, k)
            w_rev = self._res_w[p_rev, ii]
            block = self._res_w[p_rev]
            keep = np.arange(MAX_RESIDENTS)[None, :] != ii[:, None]
            others = block[keep].reshape(n_rev, MAX_RESIDENTS - 1)[
                :, :MAX_INTERFERERS
            ]
            k_row = np.repeat(k, k)
            others[np.arange(n_rev), k_row - 1] = workload
            w_all = np.concatenate(
                [np.full(n_c, workload, dtype=np.intp), w_rev]
            )
            p_all = np.concatenate([C, p_rev])
            co_all = np.concatenate([co_job, others])
        else:
            w_all = np.full(n_c, workload, dtype=np.intp)
            p_all, co_all = C, np.ascontiguousarray(co_job)
        values = self.oracle.budgets_arrays(w_all, p_all, co_all)
        budgets = values[:n_c]
        reval_ok = np.ones(n_c, dtype=bool)
        if n_rev:
            dl_of = self._dl_scratch
            dl_of.fill(np.inf)
            flat_w = self._res_w[C].ravel()
            flat_dl = self._res_dl[C].ravel()
            valid = flat_w >= 0
            np.minimum.at(dl_of, flat_w[valid], flat_dl[valid])
            bad = values[n_c:] > dl_of[w_rev]
            np.logical_and.at(reval_ok, np.repeat(np.arange(n_c), k), ~bad)
        return budgets, reval_ok

    def _start(
        self, t: float, job: SimJob, platform: int, heap, seq: int,
        epoch: int,
    ) -> int:
        co = self._co_workloads(platform)
        job.platform = platform
        job.placed_co = tuple(co)
        job.start = t
        if not np.isfinite(job.quote):
            job.quote = self.oracle.budget(job.workload, platform, co)
        job.runtime_current = self.world.sample(
            job.workload, platform, len(co), self._multiplier_at(t),
            self._world_rng,
        )
        job.completion = t + job.runtime_current
        self._admit(job, platform)
        # The caller names the epoch: a flow flush starts jobs at the
        # epoch-end sentinel, whose timestamp already rounds into the
        # *next* epoch's bucket.
        stats = self._stats[epoch]
        stats.placed += 1
        self._result.events.append(("place", t, job.job_id, platform))
        heapq.heappush(heap, (job.completion, _COMPLETION, seq, job.job_id))
        return seq + 1

    def _admit(self, job: SimJob, platform: int) -> None:
        """Register a job on a platform (resident list + slot matrices)."""
        slot = len(self._residents[platform])
        self._residents[platform].append(job.job_id)
        self._n_res[platform] += 1
        self._res_w[platform, slot] = job.workload
        self._res_dl[platform, slot] = job.deadline

    def _evict(self, job: SimJob) -> None:
        """Remove a job from its platform, shifting later slots left so
        the matrices stay in resident-list order."""
        platform = job.platform
        slot = self._residents[platform].index(job.job_id)
        self._residents[platform].remove(job.job_id)
        self._n_res[platform] -= 1
        row_w, row_dl = self._res_w[platform], self._res_dl[platform]
        row_w[slot:-1] = row_w[slot + 1 :]
        row_w[-1] = -1
        row_dl[slot:-1] = row_dl[slot + 1 :]
        row_dl[-1] = np.inf

    def _on_completion(self, t: float, job: SimJob) -> None:
        if job.completed or job.completion != t:
            return  # stale event from before a migration
        job.completed = True
        self._evict(job)
        elapsed = t - job.start
        job.deadline_violated = elapsed > job.deadline
        job.budget_violated = elapsed > job.quote
        stats = self._stats[self._epoch_of(t)]
        stats.completions += 1
        stats.deadline_violations += int(job.deadline_violated)
        stats.budget_violations += int(job.budget_violated)
        self._epoch_completions += 1
        self._epoch_budget_violations += int(job.budget_violated)
        self._result.events.append(
            (
                "complete",
                t,
                job.job_id,
                job.platform,
                int(job.deadline_violated),
                int(job.budget_violated),
            )
        )
        if self.lifecycle is not None and job.migrations == 0:
            # Migrated jobs span platforms; their end-to-end duration is
            # not an observation of any single (w, p, co) cell.
            self._pending_obs.append(
                (job.workload, job.platform, job.placed_co, elapsed)
            )

    def _on_epoch_end(
        self, t: float, epoch: int, heap, seq: int, update_rng
    ) -> int:
        stats = self._stats[epoch]
        if self.scheduling.policy == "flow":
            seq = self._flush_flow_queue(t, epoch, heap, seq)
        if self.scheduling.migrate:
            seq = self._migration_pass(t, epoch, heap, seq)
        self._lifecycle_tick(t, epoch, update_rng)
        capacity = self.world.n_platforms * self.scheduling.max_residents
        occupied = sum(len(r) for r in self._residents.values())
        stats.utilization = occupied / capacity if capacity else 0.0
        stats.generation = getattr(self.service, "generation", 0)
        return seq

    # ------------------------------------------------------------------
    # Flow batch placement
    # ------------------------------------------------------------------
    def _flush_flow_queue(self, t: float, epoch: int, heap, seq: int) -> int:
        """Place the epoch's queued arrivals as min-cost-flow batches.

        ``PlacementProblem`` keys jobs by workload index, so each pass
        peels a maximal unique-workload prefix off the queue (repeat
        workloads wait for the next pass within the same flush).
        """
        queue, self._flow_queue = self._flow_queue, []
        stats = self._stats[epoch]
        while queue:
            batch: list[SimJob] = []
            rest: list[SimJob] = []
            seen: set[int] = set()
            for job in queue:
                if job.workload in seen:
                    rest.append(job)
                else:
                    seen.add(job.workload)
                    batch.append(job)
            started = time.perf_counter()
            occupied = {
                p: tuple(self._co_workloads(p))
                for p in range(self.world.n_platforms)
                if self._residents[p]
            }
            occupied_deadlines: dict[int, float] = {}
            for p in occupied:
                for workload, deadline in self._resident_deadlines(p).items():
                    prev = occupied_deadlines.get(workload)
                    if prev is None or deadline < prev:
                        occupied_deadlines[workload] = deadline
            if self.world.n_platforms:
                problem = PlacementProblem(
                    predictor=self.service,
                    jobs=tuple(job.workload for job in batch),
                    deadlines=tuple(job.deadline for job in batch),
                    platforms=tuple(range(self.world.n_platforms)),
                    epsilon=self.epsilon,
                    max_residents=self.scheduling.max_residents,
                    occupied=occupied,
                    occupied_deadlines=occupied_deadlines,
                )
                placement = flow_placement(problem, self.oracle)
            else:
                placement = None
            stats.decision_seconds += time.perf_counter() - started
            stats.decisions += len(batch)
            for job in batch:
                platform = (
                    placement.assignment.get(job.workload)
                    if placement is not None
                    else None
                )
                if platform is None:
                    stats.rejected += 1
                    self._result.events.append(("reject", t, job.job_id))
                    continue
                job.quote = placement.budgets[job.workload]
                seq = self._start(t, job, platform, heap, seq, epoch=epoch)
            queue = rest
        return seq

    # ------------------------------------------------------------------
    # Migration on deadline risk
    # ------------------------------------------------------------------
    def _migration_pass(self, t: float, epoch: int, heap, seq: int) -> int:
        """Move at-risk running jobs to platforms where they still fit.

        Risk test under the *current* generation: with fraction ``f`` of
        the job's work remaining, it misses its deadline if
        ``(t - start) + f·b_p`` exceeds the allowance, where ``b_p`` is
        the live budget on its platform. (The work fraction is
        observable in deployments via progress counters.)

        When ``batch_events``, every running job's screening quote is
        scored in **one** :meth:`BudgetOracle.budgets` batch across all
        co-resident platforms — the fleet-wide screen the reference path
        pays one ``predict_bound`` call per job for. Migrations are rare
        relative to running jobs, so only jobs whose platform's resident
        set changed mid-pass (an earlier job moved in or out) fall back
        to a fresh single-row quote; every decision is identical to the
        reference loop's.
        """
        stats = self._stats[epoch]
        running = sorted(
            job_id
            for residents in self._residents.values()
            for job_id in residents
        )
        # Screen: (job, fraction, allowance) for every job with work
        # left. Fraction/allowance are job-local, so hoisting them out
        # of the migration loop changes nothing.
        at_risk: list[tuple[SimJob, float, float]] = []
        for job_id in running:
            job = self._jobs[job_id]
            remaining = job.completion - t
            if remaining <= 0 or job.runtime_current <= 0:
                continue
            at_risk.append(
                (
                    job,
                    remaining / job.runtime_current,
                    job.deadline - (t - job.start),
                )
            )
        if self.batch_events and at_risk:
            # One fleet-wide screening batch: each job among its current
            # co-residents (own slot masked out of the platform row).
            w_j = np.array([j.workload for j, _, _ in at_risk], dtype=np.intp)
            p_j = np.array([j.platform for j, _, _ in at_risk], dtype=np.intp)
            slots = np.array(
                [
                    self._residents[j.platform].index(j.job_id)
                    for j, _, _ in at_risk
                ],
                dtype=np.intp,
            )
            block = self._res_w[p_j]
            keep = np.arange(MAX_RESIDENTS)[None, :] != slots[:, None]
            co = block[keep].reshape(len(at_risk), MAX_RESIDENTS - 1)
            quotes = self.oracle.budgets_arrays(w_j, p_j, co)
        #: Platforms whose resident set changed during this pass — their
        #: pre-batched quotes are stale and get re-scored one-off.
        dirty: set[int] = set()
        for i, (job, fraction, allowance) in enumerate(at_risk):
            if self.batch_events and job.platform not in dirty:
                quote_here = float(quotes[i])
            else:
                quote_here = self.oracle.budget(
                    job.workload,
                    job.platform,
                    self._co_workloads(job.platform, skip=job.job_id),
                )
            if fraction * quote_here <= allowance:
                continue  # on track
            seq = self._try_migrate(
                t, job, fraction, allowance, stats, heap, seq, dirty
            )
        return seq

    def _try_migrate(
        self,
        t: float,
        job: SimJob,
        fraction: float,
        allowance: float,
        stats: EpochStats,
        heap,
        seq: int,
        dirty: set[int],
    ) -> int:
        """Candidate-scan one at-risk job and move it if somewhere fits."""
        candidates = [
            p for p in self._open_platforms() if p != job.platform
        ]
        if not candidates:
            return seq
        if self.batch_events:
            budgets, reval_ok = self._scan_candidates(job.workload, candidates)
            ok = reval_ok & (fraction * budgets <= allowance)
            if not ok.any():
                return seq
            best_i = int(np.argmin(np.where(ok, budgets, np.inf)))
            best = int(candidates[best_i])
        else:
            residents = {p: self._co_workloads(p) for p in candidates}
            deadlines: dict[int, float] = {}
            for p in candidates:
                for workload, deadline in self._resident_deadlines(p).items():
                    prev = deadlines.get(workload)
                    if prev is None or deadline < prev:
                        deadlines[workload] = deadline
            checks = self.oracle.check_candidates(
                job.workload, np.inf, candidates, residents, deadlines
            )
            best, best_budget = None, np.inf
            for check in checks:
                if (
                    check.feasible
                    and fraction * check.budget <= allowance
                    and check.budget < best_budget
                ):
                    best, best_budget = check.platform, check.budget
            if best is None:
                return seq
        self._evict(job)
        source = job.platform
        co = self._co_workloads(best)
        job.platform = best
        job.placed_co = tuple(co)
        job.runtime_current = self.world.sample(
            job.workload, best, len(co), self._multiplier_at(t),
            self._world_rng,
        )
        job.completion = t + fraction * job.runtime_current
        job.migrations += 1
        self._admit(job, best)
        dirty.add(source)
        dirty.add(best)
        stats.migrations += 1
        self._result.events.append(
            ("migrate", t, job.job_id, source, best)
        )
        heapq.heappush(
            heap, (job.completion, _COMPLETION, seq, job.job_id)
        )
        return seq + 1

    # ------------------------------------------------------------------
    # Lifecycle hook
    # ------------------------------------------------------------------
    def _lifecycle_tick(self, t: float, epoch: int, update_rng) -> None:
        if self.lifecycle is None:
            return
        stats = self._stats[epoch]
        if (
            self.reset_miscoverage is not None
            and self._epoch_completions > 0
            and self._epoch_budget_violations / self._epoch_completions
            > self.reset_miscoverage * self.epsilon
            and self.lifecycle.margin.mode != "weighted"
        ):
            # Change-point: this epoch's violations are a regime change,
            # not noise — recalibrate on the new regime alone. Under
            # recency-weighted margins the hard reset softens into the
            # margin's own exponential downweighting (see run_lifecycle).
            self.lifecycle.buffer.clear()
            stats.reset = True
        self._epoch_completions = 0
        self._epoch_budget_violations = 0
        if self._pending_obs:
            w = np.array([o[0] for o in self._pending_obs], dtype=np.intp)
            p = np.array([o[1] for o in self._pending_obs], dtype=np.intp)
            co = pad_interferers([o[2] for o in self._pending_obs])
            runtime = np.array([o[3] for o in self._pending_obs])
            self.lifecycle.ingest(w, p, co, runtime)
            self._pending_obs = []
        n_probes = self.scheduling.probes_per_epoch
        if n_probes > 0 and self.probe_source is not None:
            source = self.probe_source
            rows = self._probe_rng.integers(
                0, source.n_observations, size=n_probes
            )
            degrees = interference_pools(source.interferers[rows], n_probes)
            multiplier = self.multipliers[epoch]
            if self.batch_events:
                runtime = self.world.sample_batch(
                    source.w_idx[rows],
                    source.p_idx[rows],
                    degrees - 1,
                    multiplier,
                    self._probe_rng,
                )
            else:
                runtime = np.array(
                    [
                        self.world.sample(
                            int(source.w_idx[r]),
                            int(source.p_idx[r]),
                            int(degrees[i] - 1),
                            multiplier,
                            self._probe_rng,
                        )
                        for i, r in enumerate(rows)
                    ]
                )
            self.lifecycle.ingest(
                source.w_idx[rows],
                source.p_idx[rows],
                source.interferers[rows],
                runtime,
            )
        cadence = self.scheduling.recalibrate_every
        if (epoch + 1) % cadence == 0 and self.lifecycle.ready_to_recalibrate():
            self.lifecycle.update(steps=self.update_steps, rng=update_rng)
            fresh = self.lifecycle.recalibrate()
            self.lifecycle.promote(fresh)
            stats.promoted = True
            self._result.events.append(
                ("promote", t, self.service.generation)
            )


# ----------------------------------------------------------------------
# The pipeline artifact
# ----------------------------------------------------------------------
@dataclass
class ScheduleReport:
    """The ``simulate`` stage's artifact: adaptive vs static, per epoch.

    Everything is plain JSON-serializable data (epoch rows are
    :meth:`EpochStats.as_dict` dicts) so the artifact stays diffable and
    jq-readable like every other stage output.
    """

    scenario: str
    policy: str
    epsilon: float
    n_platforms: int
    epoch_seconds: float
    multipliers: list[float]
    adaptive: list[dict]
    static: list[dict]
    summary: dict

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScheduleReport":
        return cls(**payload)


def _steady_epochs(multipliers: list[float]) -> list[int]:
    """Epoch ids of the final drift regime, minus its adaptation edge.

    The acceptance metric is *steady-state* violation under the last
    regime: the first two epochs after a step change are the window the
    rolling recalibration needs to turn over, so they are attributed to
    adaptation, not steady state (when the regime is too short to drop
    them, its later half is used).
    """
    if not multipliers:
        return []
    last = multipliers[-1]
    start = len(multipliers)
    while start > 0 and multipliers[start - 1] == last:
        start -= 1
    ids = list(range(start, len(multipliers)))
    drop = min(2, max(len(ids) - 1, 0))
    return ids[drop:]


def build_schedule_report(
    scenario: str,
    adaptive: SimulationResult,
    static: SimulationResult,
    multipliers: list[float],
    n_platforms: int,
    epoch_seconds: float,
) -> ScheduleReport:
    """Assemble the stage artifact from the two simulation runs."""
    steady = _steady_epochs(multipliers)
    adaptive_steady = adaptive.violation_rate(steady)
    static_steady = static.violation_rate(steady)
    summary = {
        "epsilon": adaptive.epsilon,
        "steady_epochs": steady,
        "adaptive": adaptive.totals(),
        "static": static.totals(),
        "steady_budget_violation_adaptive": adaptive_steady,
        "steady_budget_violation_static": static_steady,
        "degradation": (
            static_steady / adaptive_steady
            if adaptive_steady and static_steady is not None
            else None
        ),
    }
    return ScheduleReport(
        scenario=scenario,
        policy=adaptive.policy,
        epsilon=adaptive.epsilon,
        n_platforms=n_platforms,
        epoch_seconds=epoch_seconds,
        multipliers=list(multipliers),
        adaptive=[e.as_dict() for e in adaptive.epochs],
        static=[e.as_dict() for e in static.epochs],
        summary=summary,
    )
