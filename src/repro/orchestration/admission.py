"""Admission control: can this platform take one more job, right now?

The runtime-facing counterpart of offline placement: a platform agent
holds a set of resident jobs with deadlines and decides whether an
arriving job can be admitted without violating anyone's ε-budget —
the "industrial controller must complete within a timeframe with high
probability" scenario of Sec 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AdmissionController", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission query."""

    admitted: bool
    #: ε-budget of the arriving job under post-admission interference
    #: (NaN when rejected for capacity).
    budget: float
    #: Reason string for observability ("ok", "capacity", "own-deadline",
    #: "resident-deadline").
    reason: str


class AdmissionController:
    """Per-platform admission control on conformal budgets.

    Parameters
    ----------
    predictor:
        ``predict_bound(w_idx, p_idx, interferers, epsilon)`` provider.
    platform:
        Platform index this controller guards.
    epsilon:
        Miscoverage rate for every budget check.
    max_residents:
        Co-location cap (≤ 4; the interference model covers 3 interferers).
    """

    def __init__(self, predictor, platform: int, epsilon: float = 0.05,
                 max_residents: int = 4) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if not 1 <= max_residents <= 4:
            raise ValueError("max_residents must be in [1, 4]")
        self.predictor = predictor
        self.platform = platform
        self.epsilon = epsilon
        self.max_residents = max_residents
        self._residents: dict[int, float] = {}  # job -> deadline

    # ------------------------------------------------------------------
    @property
    def residents(self) -> dict[int, float]:
        return dict(self._residents)

    def _budget(self, job: int, co: list[int]) -> float:
        pad = co[:3] + [-1] * (3 - min(len(co), 3))
        return float(
            self.predictor.predict_bound(
                np.array([job]), np.array([self.platform]),
                np.array([pad]), self.epsilon,
            )[0]
        )

    # ------------------------------------------------------------------
    def check(self, job: int, deadline: float) -> AdmissionDecision:
        """Evaluate admission without mutating state."""
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        if len(self._residents) >= self.max_residents:
            return AdmissionDecision(False, float("nan"), "capacity")
        co = list(self._residents)
        budget = self._budget(job, co)
        if budget > deadline:
            return AdmissionDecision(False, budget, "own-deadline")
        for other, other_deadline in self._residents.items():
            others = [r for r in self._residents if r != other] + [job]
            if self._budget(other, others) > other_deadline:
                return AdmissionDecision(False, budget, "resident-deadline")
        return AdmissionDecision(True, budget, "ok")

    def admit(self, job: int, deadline: float) -> AdmissionDecision:
        """Check and, if feasible, admit."""
        decision = self.check(job, deadline)
        if decision.admitted:
            self._residents[job] = deadline
        return decision

    def release(self, job: int) -> None:
        """Job finished or migrated away."""
        if job not in self._residents:
            raise KeyError(f"job {job} is not resident")
        del self._residents[job]
