"""Admission control: can this platform take one more job, right now?

The runtime-facing counterpart of offline placement: a platform agent
holds a set of resident jobs with deadlines and decides whether an
arriving job can be admitted without violating anyone's ε-budget —
the "industrial controller must complete within a timeframe with high
probability" scenario of Sec 1.

One admission query needs the arriving job's budget *and* a revalidated
budget per resident; the controller scores all of them in a single
:class:`~repro.orchestration.BudgetOracle` batch, so an admission storm
against a :class:`~repro.serving.PredictionService` costs one batched
forward per decision instead of ``1 + n_residents`` scalar calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from .oracle import BudgetOracle

__all__ = ["AdmissionController", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission query."""

    admitted: bool
    #: ε-budget of the arriving job under post-admission interference
    #: (NaN when rejected for capacity).
    budget: float
    #: Reason string for observability ("ok", "capacity", "own-deadline",
    #: "resident-deadline").
    reason: str


class AdmissionController:
    """Per-platform admission control on conformal budgets.

    Parameters
    ----------
    predictor:
        ``predict_bound(w_idx, p_idx, interferers, epsilon)`` provider.
    platform:
        Platform index this controller guards.
    epsilon:
        Miscoverage rate for every budget check.
    max_residents:
        Co-location cap (≤ 4; the interference model covers 3 interferers).
    """

    def __init__(self, predictor, platform: int, epsilon: float = 0.05,
                 max_residents: int = 4) -> None:
        if not 1 <= max_residents <= 4:
            raise ValueError("max_residents must be in [1, 4]")
        self.oracle = BudgetOracle(predictor, epsilon)
        self.platform = platform
        self.max_residents = max_residents
        self._residents: dict[int, float] = {}  # job -> deadline

    # ------------------------------------------------------------------
    @property
    def predictor(self):
        return self.oracle.predictor

    @property
    def epsilon(self) -> float:
        return self.oracle.epsilon

    @property
    def residents(self) -> dict[int, float]:
        return dict(self._residents)

    # ------------------------------------------------------------------
    def check(self, job: int, deadline: float) -> AdmissionDecision:
        """Evaluate admission without mutating state (one oracle batch)."""
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        if len(self._residents) >= self.max_residents:
            return AdmissionDecision(False, float("nan"), "capacity")
        check = self.oracle.check_candidates(
            job, deadline, [self.platform],
            {self.platform: list(self._residents)}, dict(self._residents),
        )[0]
        if check.budget > deadline:
            return AdmissionDecision(False, check.budget, "own-deadline")
        if not check.feasible:
            return AdmissionDecision(False, check.budget, "resident-deadline")
        return AdmissionDecision(True, check.budget, "ok")

    def admit(self, job: int, deadline: float) -> AdmissionDecision:
        """Check and, if feasible, admit."""
        decision = self.check(job, deadline)
        if decision.admitted:
            self._residents[job] = deadline
        return decision

    def release(self, job: int) -> None:
        """Job finished or migrated away."""
        if job not in self._residents:
            raise KeyError(f"job {job} is not resident")
        del self._residents[job]
