"""Edge orchestration on conformal runtime budgets (the Sec 1 use case).

Three layers, bottom-up:

* :class:`BudgetOracle` — the one bound-query path: scores whole
  candidate sets (own budget + co-resident revalidations) in a single
  vectorized ``predict_bound`` batch;
* offline planners (:func:`greedy_placement`, :func:`flow_placement`)
  and runtime :class:`AdmissionController` — oracle consumers;
* :class:`ClusterSimulator` — the event-driven fleet loop: arrivals,
  completions, deadline-risk migration, pluggable policies, and online
  lifecycle recalibration, scored against a :class:`FleetWorld`
  surrogate ground truth.
"""

from .admission import AdmissionController, AdmissionDecision
from .oracle import BudgetOracle, CandidateCheck
from .placement import (
    PlacementProblem,
    PlacementResult,
    flow_placement,
    greedy_placement,
)
from .simulator import (
    ClusterSimulator,
    EpochStats,
    FleetWorld,
    ScheduleReport,
    SimJob,
    SimulationResult,
    build_schedule_report,
    epoch_multipliers,
    world_calibration_window,
)

__all__ = [
    "BudgetOracle",
    "CandidateCheck",
    "PlacementProblem",
    "PlacementResult",
    "greedy_placement",
    "flow_placement",
    "AdmissionController",
    "AdmissionDecision",
    "FleetWorld",
    "ClusterSimulator",
    "SimJob",
    "SimulationResult",
    "EpochStats",
    "ScheduleReport",
    "build_schedule_report",
    "epoch_multipliers",
    "world_calibration_window",
]
