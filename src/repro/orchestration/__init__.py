"""Edge orchestration on conformal runtime budgets (the Sec 1 use case):
offline placement planners and runtime admission control."""

from .admission import AdmissionController, AdmissionDecision
from .placement import (
    PlacementProblem,
    PlacementResult,
    flow_placement,
    greedy_placement,
)

__all__ = [
    "PlacementProblem",
    "PlacementResult",
    "greedy_placement",
    "flow_placement",
    "AdmissionController",
    "AdmissionDecision",
]
