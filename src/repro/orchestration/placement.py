"""Deadline-aware workload placement on conformal runtime budgets.

The paper's opening motivation: "runtime performance measures are crucial
for edge orchestration frameworks that aim to ensure workload performance
by placing them on different available platforms" (Sec 1). This module is
that consumer, built on Pitot's calibrated bounds: a placement is
*feasible* when every job's ε-budget — including interference from its
co-residents — meets its deadline.

Two planners are provided:

* :func:`greedy_placement` — earliest-deadline-first greedy with
  co-resident revalidation; fast, good when load is moderate.
* :func:`flow_placement` — global assignment via min-cost flow on the
  job → (platform, slot-state) feasibility graph built from the greedy
  residual; rescues jobs the greedy pass strands.

Both are interference-aware: adding a job to a platform re-checks the
budgets of everything already there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = ["PlacementProblem", "PlacementResult", "greedy_placement", "flow_placement"]

#: Pitot models at most 3 interferers (4-way); a platform therefore holds
#: at most 4 co-resident jobs, but planners may set a lower limit.
MAX_RESIDENTS = 4


@dataclass(frozen=True)
class PlacementProblem:
    """One placement instance.

    Attributes
    ----------
    predictor:
        Calibrated bound predictor: must expose
        ``predict_bound(w_idx, p_idx, interferers, epsilon) → seconds``.
    jobs:
        Workload indices to place.
    deadlines:
        Seconds allowed per job (aligned with ``jobs``).
    platforms:
        Candidate platform indices.
    epsilon:
        Miscoverage rate for the budgets (e.g. 0.05 = 95% confidence).
    max_residents:
        Co-location cap per platform (≤ 4; interference model limit).
    """

    predictor: object
    jobs: tuple[int, ...]
    deadlines: tuple[float, ...]
    platforms: tuple[int, ...]
    epsilon: float = 0.05
    max_residents: int = 3

    def __post_init__(self) -> None:
        if len(self.jobs) != len(self.deadlines):
            raise ValueError("jobs and deadlines must align")
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if not 1 <= self.max_residents <= MAX_RESIDENTS:
            raise ValueError(f"max_residents must be in [1, {MAX_RESIDENTS}]")
        if any(d <= 0 for d in self.deadlines):
            raise ValueError("deadlines must be positive")

    @property
    def deadline_of(self) -> dict[int, float]:
        return dict(zip(self.jobs, self.deadlines))


@dataclass
class PlacementResult:
    """Outcome of a planner run."""

    assignment: dict[int, int | None] = field(default_factory=dict)
    residents: dict[int, list[int]] = field(default_factory=dict)
    budgets: dict[int, float] = field(default_factory=dict)

    @property
    def placed(self) -> list[int]:
        return [j for j, p in self.assignment.items() if p is not None]

    @property
    def unplaced(self) -> list[int]:
        return [j for j, p in self.assignment.items() if p is None]

    def utilization(self) -> dict[int, int]:
        """Resident count per platform."""
        return {p: len(r) for p, r in self.residents.items()}


def _budget(problem: PlacementProblem, job: int, platform: int,
            co_residents: list[int]) -> float:
    """ε-budget for ``job`` on ``platform`` among ``co_residents``."""
    pad = list(co_residents[:3]) + [-1] * (3 - min(len(co_residents), 3))
    return float(
        problem.predictor.predict_bound(
            np.array([job]), np.array([platform]),
            np.array([pad]), problem.epsilon,
        )[0]
    )


def _placement_feasible(problem: PlacementProblem, job: int, platform: int,
                        residents: list[int]) -> float | None:
    """Budget if placing ``job`` keeps everyone's deadline, else None."""
    deadline = problem.deadline_of
    budget = _budget(problem, job, platform, residents)
    if budget > deadline[job]:
        return None
    for other in residents:
        others = [r for r in residents if r != other] + [job]
        if _budget(problem, other, platform, others) > deadline[other]:
            return None
    return budget


def greedy_placement(problem: PlacementProblem) -> PlacementResult:
    """Earliest-deadline-first greedy with tightest-fit platform choice."""
    result = PlacementResult(
        residents={p: [] for p in problem.platforms}
    )
    order = np.argsort(problem.deadlines)
    for idx in order:
        job = problem.jobs[idx]
        best_platform, best_budget = None, np.inf
        for platform in problem.platforms:
            residents = result.residents[platform]
            if len(residents) >= problem.max_residents:
                continue
            budget = _placement_feasible(problem, job, platform, residents)
            if budget is not None and budget < best_budget:
                best_platform, best_budget = platform, budget
        result.assignment[job] = best_platform
        if best_platform is not None:
            result.residents[best_platform].append(job)
            result.budgets[job] = best_budget
    return result


def flow_placement(problem: PlacementProblem) -> PlacementResult:
    """Greedy pass + min-cost-flow rescue of stranded jobs.

    The flow graph connects each unplaced job to every platform with
    spare capacity where the job fits *given the current residents*;
    edge costs prefer tight fits (less wasted headroom). A high-cost
    "drop" edge keeps the problem always feasible.
    """
    result = greedy_placement(problem)
    unplaced = result.unplaced
    if not unplaced:
        return result

    graph = nx.DiGraph()
    graph.add_node("src", demand=-len(unplaced))
    graph.add_node("sink", demand=len(unplaced))
    any_edge = False
    for job in unplaced:
        graph.add_edge("src", f"j{job}", capacity=1, weight=0)
        graph.add_edge(f"j{job}", "sink", capacity=1, weight=1_000_000)
    for platform in problem.platforms:
        residents = result.residents[platform]
        spare = problem.max_residents - len(residents)
        if spare <= 0:
            continue
        # Conservative: admit at most one rescue per platform so the
        # feasibility check (against current residents) stays valid.
        graph.add_edge(f"p{platform}", "sink", capacity=1, weight=0)
        for job in unplaced:
            budget = _placement_feasible(problem, job, platform, residents)
            if budget is None:
                continue
            any_edge = True
            headroom = 1.0 - budget / problem.deadline_of[job]
            graph.add_edge(
                f"j{job}", f"p{platform}", capacity=1,
                weight=int(1000 * headroom),
            )
    if not any_edge:
        return result

    flow = nx.min_cost_flow(graph)
    for job in unplaced:
        for target, amount in flow.get(f"j{job}", {}).items():
            if amount > 0 and target.startswith("p"):
                platform = int(target[1:])
                result.assignment[job] = platform
                result.residents[platform].append(job)
                result.budgets[job] = _budget(
                    problem, job, platform,
                    [r for r in result.residents[platform] if r != job],
                )
    return result
