"""Deadline-aware workload placement on conformal runtime budgets.

The paper's opening motivation: "runtime performance measures are crucial
for edge orchestration frameworks that aim to ensure workload performance
by placing them on different available platforms" (Sec 1). This module is
that consumer, built on Pitot's calibrated bounds: a placement is
*feasible* when every job's ε-budget — including interference from its
co-residents — meets its deadline.

Two planners are provided:

* :func:`greedy_placement` — earliest-deadline-first greedy with
  co-resident revalidation; fast, good when load is moderate.
* :func:`flow_placement` — global assignment via min-cost flow on the
  job → (platform, slot-state) feasibility graph built from the greedy
  residual; rescues jobs the greedy pass strands.

Both are interference-aware: adding a job to a platform re-checks the
budgets of everything already there. All bound queries flow through a
shared :class:`~repro.orchestration.BudgetOracle`, which scores a job's
entire candidate scan (own budget on every open platform plus every
co-resident revalidation row) in one vectorized ``predict_bound`` batch
— the planners are consumers of that score matrix, so a
:class:`~repro.serving.PredictionService` behind the oracle serves a
whole decision from one batched forward instead of thousands of one-row
calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from .oracle import BudgetOracle

__all__ = ["PlacementProblem", "PlacementResult", "greedy_placement", "flow_placement"]

#: Pitot models at most 3 interferers (4-way); a platform therefore holds
#: at most 4 co-resident jobs, but planners may set a lower limit.
MAX_RESIDENTS = 4


@dataclass(frozen=True)
class PlacementProblem:
    """One placement instance.

    Attributes
    ----------
    predictor:
        Calibrated bound predictor: must expose
        ``predict_bound(w_idx, p_idx, interferers, epsilon) → seconds``.
    jobs:
        Workload indices to place.
    deadlines:
        Seconds allowed per job (aligned with ``jobs``).
    platforms:
        Candidate platform indices.
    epsilon:
        Miscoverage rate for the budgets (e.g. 0.05 = 95% confidence).
    max_residents:
        Co-location cap per platform (≤ 4; interference model limit).
    occupied:
        Pre-existing residents per platform (platform → workload
        indices): the warm-cluster case the simulator plans into. They
        consume capacity and are revalidated like any co-resident, but
        are never reassigned.
    occupied_deadlines:
        Deadline per occupied workload (required for every workload in
        ``occupied``).
    """

    predictor: object
    jobs: tuple[int, ...]
    deadlines: tuple[float, ...]
    platforms: tuple[int, ...]
    epsilon: float = 0.05
    max_residents: int = 3
    occupied: dict[int, tuple[int, ...]] = field(default_factory=dict)
    occupied_deadlines: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.jobs) != len(self.deadlines):
            raise ValueError("jobs and deadlines must align")
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if not 1 <= self.max_residents <= MAX_RESIDENTS:
            raise ValueError(f"max_residents must be in [1, {MAX_RESIDENTS}]")
        if any(d <= 0 for d in self.deadlines):
            raise ValueError("deadlines must be positive")
        for platform, residents in self.occupied.items():
            if platform not in self.platforms:
                raise ValueError(f"occupied platform {platform} not a candidate")
            if len(residents) > self.max_residents:
                raise ValueError(
                    f"platform {platform} starts over capacity "
                    f"({len(residents)} > {self.max_residents})"
                )
            for workload in residents:
                if workload not in self.occupied_deadlines:
                    raise ValueError(
                        f"occupied workload {workload} has no deadline"
                    )
        # Built exactly once: planners read this mapping inside their
        # inner loops, and rebuilding it per property access used to
        # dominate small-instance planning time. On a (rare) workload
        # collision between a job and an occupied resident, the tighter
        # deadline wins: revalidation must protect the running
        # resident's real deadline, never a looser arrival's.
        merged = dict(self.occupied_deadlines)
        for job, deadline in zip(self.jobs, self.deadlines):
            prev = merged.get(job)
            merged[job] = deadline if prev is None else min(prev, deadline)
        object.__setattr__(self, "_deadline_of", merged)

    @property
    def deadline_of(self) -> dict[int, float]:
        """Workload → deadline mapping (constructed once at init);
        covers both the jobs being placed and any occupied residents."""
        return self._deadline_of

    def oracle(self, batched: bool = True) -> BudgetOracle:
        """A :class:`BudgetOracle` over this problem's predictor/ε."""
        return BudgetOracle(self.predictor, self.epsilon, batched=batched)


@dataclass
class PlacementResult:
    """Outcome of a planner run."""

    assignment: dict[int, int | None] = field(default_factory=dict)
    residents: dict[int, list[int]] = field(default_factory=dict)
    budgets: dict[int, float] = field(default_factory=dict)

    @property
    def placed(self) -> list[int]:
        return [j for j, p in self.assignment.items() if p is not None]

    @property
    def unplaced(self) -> list[int]:
        return [j for j, p in self.assignment.items() if p is None]

    def utilization(self) -> dict[int, int]:
        """Resident count per platform."""
        return {p: len(r) for p, r in self.residents.items()}


def greedy_placement(
    problem: PlacementProblem, oracle: BudgetOracle | None = None
) -> PlacementResult:
    """Earliest-deadline-first greedy with tightest-fit platform choice.

    Each job's whole platform scan — own budget plus co-resident
    revalidations on every platform with spare capacity — is scored in
    one oracle batch; the tightest feasible fit wins (first platform in
    ``problem.platforms`` order on ties, matching the historical scalar
    loop bit for bit).
    """
    if oracle is None:
        oracle = problem.oracle()
    result = PlacementResult(
        residents={
            p: list(problem.occupied.get(p, ())) for p in problem.platforms
        }
    )
    deadline_of = problem.deadline_of
    order = np.argsort(problem.deadlines)
    for idx in order:
        job = problem.jobs[idx]
        candidates = [
            p for p in problem.platforms
            if len(result.residents[p]) < problem.max_residents
        ]
        checks = oracle.check_candidates(
            job, deadline_of[job], candidates, result.residents, deadline_of
        )
        best_platform, best_budget = None, np.inf
        for check in checks:
            if check.feasible and check.budget < best_budget:
                best_platform, best_budget = check.platform, check.budget
        result.assignment[job] = best_platform
        if best_platform is not None:
            result.residents[best_platform].append(job)
            result.budgets[job] = best_budget
    return result


def flow_placement(
    problem: PlacementProblem, oracle: BudgetOracle | None = None
) -> PlacementResult:
    """Greedy pass + min-cost-flow rescue of stranded jobs.

    The flow graph connects each unplaced job to every platform with
    spare capacity where the job fits *given the current residents*;
    edge costs prefer tight fits (less wasted headroom) and the whole
    job × platform feasibility matrix is scored in one oracle batch. A
    high-cost "drop" edge keeps the problem always feasible.

    Platform arcs carry their full spare capacity, so one platform can
    absorb several stranded jobs; because the feasibility edges were
    scored against pre-rescue residents, accepted rescues are applied
    earliest-deadline-first with a revalidation check against the
    platform's *current* residents — a rescue that a previously accepted
    rescue invalidated is dropped instead of violating a deadline.
    """
    if oracle is None:
        oracle = problem.oracle()
    result = greedy_placement(problem, oracle)
    unplaced = result.unplaced
    if not unplaced:
        return result
    deadline_of = problem.deadline_of

    open_platforms = [
        p for p in problem.platforms
        if len(result.residents[p]) < problem.max_residents
    ]
    # The score matrix: every stranded job against every open platform,
    # revalidation rows included, in one batch.
    checks = {
        job: oracle.check_candidates(
            job, deadline_of[job], open_platforms, result.residents,
            deadline_of,
        )
        for job in unplaced
    }

    graph = nx.DiGraph()
    graph.add_node("src", demand=-len(unplaced))
    graph.add_node("sink", demand=len(unplaced))
    any_edge = False
    for job in unplaced:
        graph.add_edge("src", f"j{job}", capacity=1, weight=0)
        graph.add_edge(f"j{job}", "sink", capacity=1, weight=1_000_000)
    for index, platform in enumerate(open_platforms):
        spare = problem.max_residents - len(result.residents[platform])
        graph.add_edge(f"p{platform}", "sink", capacity=spare, weight=0)
        for job in unplaced:
            # checks[job] is aligned with open_platforms order.
            check = checks[job][index]
            if not check.feasible:
                continue
            any_edge = True
            headroom = 1.0 - check.budget / deadline_of[job]
            graph.add_edge(
                f"j{job}", f"p{platform}", capacity=1,
                weight=int(1000 * headroom),
            )
    if not any_edge:
        return result

    flow = nx.min_cost_flow(graph)
    rescues: list[tuple[float, int, int, int]] = []
    for position, job in enumerate(unplaced):
        for target, amount in flow.get(f"j{job}", {}).items():
            if amount > 0 and target.startswith("p"):
                rescues.append(
                    (deadline_of[job], position, job, int(target[1:]))
                )
    # Earliest deadline first (position breaks ties deterministically):
    # the same priority order the greedy pass used.
    for _, _, job, platform in sorted(rescues):
        if len(result.residents[platform]) >= problem.max_residents:
            continue
        budget = oracle.check_placement(
            job, deadline_of[job], platform, result.residents[platform],
            deadline_of,
        )
        if budget is None:
            continue
        result.assignment[job] = platform
        result.residents[platform].append(job)
        result.budgets[job] = budget
    return result
