"""Batched ε-budget scoring: the one bound-query path for orchestration.

Every scheduling decision reduces to the same primitive — "what is the
ε-budget of workload *w* on platform *p* among co-residents *co*?" — and
before this module each consumer (greedy placement, flow rescue,
admission control) issued it as its own one-row ``predict_bound`` call
inside a Python loop. At fleet scale that is thousands of single-row
forwards per placement decision, none of which reach the batched
serving layer.

:class:`BudgetOracle` centralizes the primitive and scores *sets* of
candidates in one vectorized ``predict_bound`` batch: a job's candidate
scan (its own budget on every platform with spare capacity **plus** the
revalidation rows of every prospective co-resident) becomes a single
call, and the planners become consumers of the resulting score rows.
``batched=False`` preserves the historical one-row-per-call loop as the
reference path — decisions are identical by construction, which is what
the planner-parity tests and the placement-throughput benchmark pin
down.
"""

from __future__ import annotations

import numpy as np

from ..cluster.dataset import pad_interferers

__all__ = ["BudgetOracle", "CandidateCheck"]

#: A scoring row: (workload, platform, co-resident workload indices).
_Row = tuple[int, int, tuple[int, ...]]


class CandidateCheck:
    """Feasibility verdict for placing one job on one platform.

    ``budget`` is the job's own ε-budget under the post-placement
    interference set; ``feasible`` additionally requires every
    prospective co-resident's revalidated budget to stay within its own
    deadline.
    """

    __slots__ = ("platform", "budget", "feasible")

    def __init__(self, platform: int, budget: float, feasible: bool) -> None:
        self.platform = platform
        self.budget = budget
        self.feasible = feasible

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CandidateCheck(platform={self.platform}, "
            f"budget={self.budget:.6g}, feasible={self.feasible})"
        )


class BudgetOracle:
    """Vectorized ε-budget scorer over any ``predict_bound`` provider.

    Parameters
    ----------
    predictor:
        ``predict_bound(w_idx, p_idx, interferers, epsilon) → seconds``
        provider — a :class:`~repro.serving.PredictionService`, a
        :class:`~repro.conformal.ConformalRuntimePredictor`, or any
        test stub speaking the same protocol.
    epsilon:
        Miscoverage rate baked into every budget this oracle quotes.
    batched:
        ``True`` (default) stacks all rows of a scoring request into one
        ``predict_bound`` call; ``False`` replays the historical one-row
        loop (the reference path benchmarked against).
    """

    def __init__(self, predictor, epsilon: float, batched: bool = True) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.predictor = predictor
        self.epsilon = float(epsilon)
        self.batched = bool(batched)

    # ------------------------------------------------------------------
    # The scoring primitive
    # ------------------------------------------------------------------
    def budgets(self, rows: list[_Row]) -> np.ndarray:
        """ε-budgets (seconds) for a list of (workload, platform, co) rows.

        One ``predict_bound`` batch when ``batched``; otherwise one call
        per row (bit-identical outputs for row-independent predictors).
        """
        if not rows:
            return np.empty(0)
        interferers = pad_interferers([tuple(co)[:3] for _, _, co in rows])
        w = np.array([row[0] for row in rows], dtype=np.intp)
        p = np.array([row[1] for row in rows], dtype=np.intp)
        if self.batched:
            return np.asarray(
                self.predictor.predict_bound(w, p, interferers, self.epsilon),
                dtype=float,
            )
        out = np.empty(len(rows))
        for i in range(len(rows)):
            out[i] = float(
                self.predictor.predict_bound(
                    w[i : i + 1], p[i : i + 1], interferers[i : i + 1],
                    self.epsilon,
                )[0]
            )
        return out

    def budget(self, workload: int, platform: int,
               co: tuple[int, ...] | list[int] = ()) -> float:
        """Single-row convenience wrapper over :meth:`budgets`."""
        return float(self.budgets([(workload, platform, tuple(co))])[0])

    def budgets_arrays(
        self,
        w_idx: np.ndarray,
        p_idx: np.ndarray,
        interferers: np.ndarray,
    ) -> np.ndarray:
        """Array-native :meth:`budgets`: rows arrive already ``-1``-padded.

        The simulator's batched event path maintains padded co-resident
        matrices incrementally, so it skips the per-row tuple building
        and re-padding :meth:`budgets` performs. Same contract: one
        ``predict_bound`` batch when ``batched``, else a per-row loop.
        """
        if len(w_idx) == 0:
            return np.empty(0)
        if self.batched:
            return np.asarray(
                self.predictor.predict_bound(
                    w_idx, p_idx, interferers, self.epsilon
                ),
                dtype=float,
            )
        out = np.empty(len(w_idx))
        for i in range(len(w_idx)):
            out[i] = float(
                self.predictor.predict_bound(
                    w_idx[i : i + 1], p_idx[i : i + 1],
                    interferers[i : i + 1], self.epsilon,
                )[0]
            )
        return out

    # ------------------------------------------------------------------
    # Feasibility-checked candidate scans
    # ------------------------------------------------------------------
    @staticmethod
    def _candidate_rows(
        job: int, platform: int, residents: list[int]
    ) -> list[_Row]:
        """The placement-check rows for one (job, platform) candidate:
        the job among the residents, then each resident revalidated with
        the job added."""
        rows: list[_Row] = [(job, platform, tuple(residents))]
        for i, other in enumerate(residents):
            # Positional removal, not value removal: a platform may host
            # two jobs of the same workload (simulator streams), and the
            # revalidation row must drop exactly one of them.
            others = tuple(residents[:i]) + tuple(residents[i + 1:]) + (job,)
            rows.append((other, platform, others))
        return rows

    def check_candidates(
        self,
        job: int,
        deadline: float,
        candidates: list[int],
        residents_of: dict[int, list[int]],
        deadline_of: dict[int, float],
    ) -> list[CandidateCheck]:
        """Score one job against every candidate platform in one batch.

        For each candidate the batch carries the job's own budget row
        plus one revalidation row per prospective co-resident; a
        candidate is feasible when the job's budget meets ``deadline``
        *and* every co-resident's revalidated budget still meets its own
        deadline (looked up in ``deadline_of``).
        """
        rows: list[_Row] = []
        spans: list[tuple[int, int, int]] = []  # (platform, lo, hi)
        for platform in candidates:
            residents = residents_of[platform]
            lo = len(rows)
            rows.extend(self._candidate_rows(job, platform, residents))
            spans.append((platform, lo, len(rows)))
        values = self.budgets(rows)
        checks: list[CandidateCheck] = []
        for platform, lo, hi in spans:
            budget = float(values[lo])
            feasible = budget <= deadline
            if feasible:
                for offset, other in enumerate(residents_of[platform]):
                    if values[lo + 1 + offset] > deadline_of[other]:
                        feasible = False
                        break
            checks.append(CandidateCheck(platform, budget, feasible))
        return checks

    def check_placement(
        self,
        job: int,
        deadline: float,
        platform: int,
        residents: list[int],
        deadline_of: dict[int, float],
    ) -> float | None:
        """Budget if placing ``job`` keeps every deadline, else ``None``.

        The single-candidate form of :meth:`check_candidates`; used by
        admission control and by the flow planner's post-rescue
        revalidation.
        """
        check = self.check_candidates(
            job, deadline, [platform], {platform: residents}, deadline_of
        )[0]
        return check.budget if check.feasible else None
