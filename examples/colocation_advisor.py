"""Co-location advisor: which workloads can safely share a platform?

Uses Pitot's interference model (Sec 3.4) the way an edge operator would:
given a primary latency-sensitive workload pinned to a platform, rank
candidate background workloads by the predicted slowdown they inflict, and
inspect the platform's learned interference matrix norm (Fig 12d) to find
contention-tolerant hardware.

    python examples/colocation_advisor.py
"""

import numpy as np

from repro import (
    PitotConfig,
    TrainerConfig,
    collect_dataset,
    make_split,
    train_pitot,
)
from repro.analysis import interference_spectral_norms


def main() -> None:
    print("collecting dataset + training Pitot...")
    dataset = collect_dataset(
        seed=0, n_workloads=60, n_devices=8, n_runtimes=5, sets_per_degree=40
    )
    split = make_split(dataset, train_fraction=0.6, seed=0)
    model = train_pitot(
        split.train, split.calibration,
        model_config=PitotConfig(hidden=(64, 64)),
        trainer_config=TrainerConfig(steps=800, batch_per_degree=256, seed=0),
    ).model

    # ------------------------------------------------------------------
    # 1. Rank co-runner candidates for a pinned primary workload.
    # ------------------------------------------------------------------
    primary, platform = 10, 5
    candidates = [w for w in range(dataset.n_workloads) if w != primary]
    alone = model.predict_runtime(np.array([primary]), np.array([platform]))[0]
    co = np.array([[c, -1, -1] for c in candidates])
    paired = model.predict_runtime(
        np.full(len(candidates), primary),
        np.full(len(candidates), platform),
        co,
    )
    slowdown = paired / alone
    order = np.argsort(slowdown)

    print(f"\nprimary: {dataset.workloads[primary].name} on "
          f"{dataset.platforms[platform].name} "
          f"(predicted {alone*1e3:.2f} ms alone)")
    print("\n  safest co-runners (predicted slowdown):")
    for idx in order[:5]:
        print(f"    {dataset.workloads[candidates[idx]].name:42s} "
              f"{slowdown[idx]:.3f}x")
    print("  most harmful co-runners:")
    for idx in order[-5:]:
        print(f"    {dataset.workloads[candidates[idx]].name:42s} "
              f"{slowdown[idx]:.3f}x")

    # ------------------------------------------------------------------
    # 2. Which platforms tolerate contention? (learned ||F_j||, Fig 12d)
    # ------------------------------------------------------------------
    norms = interference_spectral_norms(model.interference_matrices())
    order = np.argsort(norms)
    print("\nmost contention-tolerant platforms (smallest learned ||F_j||):")
    for j in order[:5]:
        print(f"    {dataset.platforms[j].name:36s} ||F|| = {norms[j]:.2f}")
    print("most contention-prone platforms:")
    for j in order[-5:]:
        print(f"    {dataset.platforms[j].name:36s} ||F|| = {norms[j]:.2f}")

    # ------------------------------------------------------------------
    # 3. Validate one recommendation against the simulator's ground truth.
    # ------------------------------------------------------------------
    best = candidates[int(np.argsort(slowdown)[0])]
    worst = candidates[int(np.argsort(slowdown)[-1])]
    print(f"\nsanity check vs observed data: pairing with "
          f"'{dataset.workloads[best].benchmark}' predicted "
          f"{slowdown.min():.3f}x vs '{dataset.workloads[worst].benchmark}' "
          f"{slowdown.max():.3f}x")


if __name__ == "__main__":
    main()
