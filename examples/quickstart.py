"""Quickstart: collect a dataset, train Pitot, predict runtimes + bounds.

Runs in ~1 minute on a laptop (miniature cluster, shortened training).

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    PAPER_QUANTILES,
    ConformalRuntimePredictor,
    PitotConfig,
    TrainerConfig,
    collect_dataset,
    coverage,
    make_split,
    mape,
    overprovision_margin,
    train_pitot,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Collect a runtime dataset from the simulated cluster (Sec 4).
    #    Full scale is collect_dataset(seed=0); the miniature arguments
    #    keep this example fast.
    # ------------------------------------------------------------------
    print("collecting dataset from the simulated cluster...")
    dataset = collect_dataset(
        seed=0, n_workloads=60, n_devices=8, n_runtimes=5, sets_per_degree=40
    )
    print(f"  {dataset.summary()}")

    # 50% of observations available, 80/20 train/calibration (Sec 5.1).
    split = make_split(dataset, train_fraction=0.5, seed=0)

    # ------------------------------------------------------------------
    # 2. Train the squared-loss Pitot for point predictions (Secs 3.2-3.4).
    # ------------------------------------------------------------------
    print("training Pitot (point prediction)...")
    result = train_pitot(
        split.train,
        split.calibration,
        model_config=PitotConfig(hidden=(64, 64)),
        trainer_config=TrainerConfig(steps=800, batch_per_degree=256, seed=0),
    )
    model = result.model

    test = split.test
    pred = model.predict_runtime(test.w_idx, test.p_idx, test.interferers)
    iso = test.isolation_mask()
    print(f"  MAPE without interference: {mape(pred[iso], test.runtime[iso]):.1%}")
    print(f"  MAPE with interference:    {mape(pred[~iso], test.runtime[~iso]):.1%}")

    # A single prediction: workload 3 on platform 7 next to workloads 11, 19.
    w, p = np.array([3]), np.array([7])
    alone = model.predict_runtime(w, p)[0]
    crowded = model.predict_runtime(w, p, np.array([[11, 19, -1]]))[0]
    name = dataset.workloads[3].name
    plat = dataset.platforms[7].name
    print(f"  {name} on {plat}: {alone*1e3:.2f} ms alone, "
          f"{crowded*1e3:.2f} ms next to 2 co-runners "
          f"({crowded/alone:.2f}x slowdown)")

    # ------------------------------------------------------------------
    # 3. Train the quantile version and conformalize for runtime budgets
    #    (Sec 3.5): bounds that hold with probability >= 1 - epsilon.
    # ------------------------------------------------------------------
    print("training Pitot (quantile heads) + conformal calibration...")
    q_result = train_pitot(
        split.train,
        split.calibration,
        model_config=PitotConfig(hidden=(64, 64), quantiles=PAPER_QUANTILES),
        trainer_config=TrainerConfig(steps=600, batch_per_degree=192, seed=0),
    )
    predictor = ConformalRuntimePredictor(
        q_result.model, quantiles=PAPER_QUANTILES, strategy="pitot"
    ).calibrate(split.calibration, epsilons=(0.1, 0.05))

    for eps in (0.1, 0.05):
        bound = predictor.predict_bound_dataset(test, eps)
        print(f"  eps={eps}: coverage {coverage(bound, test.runtime):.3f} "
              f"(target >= {1-eps}), overprovisioning margin "
              f"{overprovision_margin(bound, test.runtime):.1%}")

    budget = predictor.predict_bound(w, p, np.array([[11, 19, -1]]), 0.05)[0]
    print(f"  95%-confidence runtime budget for {name} with 2 co-runners: "
          f"{budget*1e3:.2f} ms")


if __name__ == "__main__":
    main()
