"""Capacity planning: how much does calibrated overprovisioning cost?

The paper frames bound tightness as the overprovisioning margin (Eq. 11):
the compute you must reserve beyond the realized runtime. This example
quantifies that budget across miscoverage rates and compares Pitot's
adaptive CQR bounds with a naive static-multiplier policy ("reserve 2x
the point prediction"), showing why calibrated bounds matter for
provisioning decisions.

    python examples/capacity_planning.py
"""

import numpy as np

from repro import (
    PAPER_QUANTILES,
    ConformalRuntimePredictor,
    PitotConfig,
    TrainerConfig,
    collect_dataset,
    coverage,
    make_split,
    overprovision_margin,
    train_pitot,
)

EPSILONS = (0.2, 0.1, 0.05, 0.02)


def main() -> None:
    print("collecting dataset + training models...")
    dataset = collect_dataset(
        seed=0, n_workloads=60, n_devices=8, n_runtimes=5, sets_per_degree=40
    )
    split = make_split(dataset, train_fraction=0.6, seed=0)
    test = split.test

    point = train_pitot(
        split.train, split.calibration,
        model_config=PitotConfig(hidden=(64, 64)),
        trainer_config=TrainerConfig(steps=800, batch_per_degree=256, seed=0),
    ).model
    quantile = train_pitot(
        split.train, split.calibration,
        model_config=PitotConfig(hidden=(64, 64), quantiles=PAPER_QUANTILES),
        trainer_config=TrainerConfig(steps=600, batch_per_degree=192, seed=0),
    ).model
    predictor = ConformalRuntimePredictor(
        quantile, quantiles=PAPER_QUANTILES, strategy="pitot"
    ).calibrate(split.calibration, epsilons=EPSILONS)

    # Naive policy: fixed multiplier over the point prediction.
    pred = point.predict_runtime(test.w_idx, test.p_idx, test.interferers)

    print("\npolicy comparison on held-out test data:")
    print(f"{'policy':32s} {'coverage':>9s} {'margin':>9s}")
    for mult in (1.5, 2.0, 3.0):
        bound = pred * mult
        print(f"{'static reserve ' + str(mult) + 'x':32s} "
              f"{coverage(bound, test.runtime):9.3f} "
              f"{overprovision_margin(bound, test.runtime):9.1%}")
    for eps in EPSILONS:
        bound = predictor.predict_bound_dataset(test, eps)
        print(f"{'conformal eps=' + str(eps):32s} "
              f"{coverage(bound, test.runtime):9.3f} "
              f"{overprovision_margin(bound, test.runtime):9.1%}")

    # The planning view: reserved core-seconds for a job mix.
    rng = np.random.default_rng(1)
    rows = rng.choice(test.n_observations, size=min(500, test.n_observations),
                      replace=False)
    realized = test.runtime[rows].sum()
    for eps in (0.1, 0.05):
        bound = predictor.predict_bound_dataset(test, eps)[rows]
        print(f"\njob mix of {len(rows)} tasks: realized {realized:.1f}s, "
              f"reserved at eps={eps}: {bound.sum():.1f}s "
              f"({bound.sum()/realized - 1:.1%} overhead)")


if __name__ == "__main__":
    main()
