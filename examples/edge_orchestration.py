"""Edge orchestration: deadline-aware workload placement with Pitot bounds.

The paper motivates Pitot with edge orchestration frameworks that place
latency-sensitive workloads on heterogeneous platforms (Sec 1). This
example drives that consumer via :mod:`repro.orchestration`: given a batch
of workloads with deadlines, place each on a platform such that its
*conformal runtime budget* (95%-confidence upper bound, including
interference from workloads sharing the platform) meets the deadline —
greedy assignment plus min-cost-flow rescue — and then admit a late
arrival through the runtime admission controller.

    python examples/edge_orchestration.py
"""

import numpy as np

from repro import (
    PAPER_QUANTILES,
    AdmissionController,
    ConformalRuntimePredictor,
    PitotConfig,
    PlacementProblem,
    TrainerConfig,
    collect_dataset,
    flow_placement,
    greedy_placement,
    make_split,
    train_pitot,
)

EPSILON = 0.05


def main() -> None:
    print("collecting dataset + training conformal predictor...")
    dataset = collect_dataset(
        seed=0, n_workloads=60, n_devices=8, n_runtimes=5, sets_per_degree=40
    )
    split = make_split(dataset, train_fraction=0.6, seed=0)
    result = train_pitot(
        split.train,
        split.calibration,
        model_config=PitotConfig(hidden=(64, 64), quantiles=PAPER_QUANTILES),
        trainer_config=TrainerConfig(steps=600, batch_per_degree=192, seed=0),
    )
    predictor = ConformalRuntimePredictor(
        result.model, quantiles=PAPER_QUANTILES, strategy="pitot"
    ).calibrate(split.calibration, epsilons=(EPSILON,))

    # ------------------------------------------------------------------
    # Offline placement: 12 jobs, 6 platforms, deadline = 3x median runtime.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    jobs = tuple(
        int(j) for j in rng.choice(dataset.n_workloads, size=12, replace=False)
    )
    platforms = tuple(
        int(p) for p in rng.choice(dataset.n_platforms, size=6, replace=False)
    )
    deadlines = tuple(
        3.0 * float(np.median(dataset.runtime[dataset.w_idx == j]))
        for j in jobs
    )
    problem = PlacementProblem(
        predictor=predictor,
        jobs=jobs,
        deadlines=deadlines,
        platforms=platforms,
        epsilon=EPSILON,
        max_residents=3,
    )

    greedy = greedy_placement(problem)
    placement = flow_placement(problem)
    rescued = len(placement.placed) - len(greedy.placed)

    print(f"\nplacement (deadline = 3x median runtime, eps={EPSILON}):")
    deadline_of = problem.deadline_of
    for job in jobs:
        platform = placement.assignment[job]
        name = dataset.workloads[job].name
        if platform is None:
            print(f"  {name:42s} -> UNPLACEABLE within deadline")
            continue
        co = len(placement.residents[platform]) - 1
        print(f"  {name:42s} -> {dataset.platforms[platform].name:32s} "
              f"budget {placement.budgets[job]*1e3:10.2f} ms / "
              f"deadline {deadline_of[job]*1e3:10.2f} ms  ({co} co-runner(s))")
    print(f"\nplaced {len(placement.placed)}/{len(jobs)} jobs "
          f"({rescued} rescued by min-cost-flow refinement)")

    # ------------------------------------------------------------------
    # Runtime admission: a late arrival asks the busiest platform.
    # ------------------------------------------------------------------
    busiest = max(placement.residents, key=lambda p: len(placement.residents[p]))
    controller = AdmissionController(
        predictor, platform=busiest, epsilon=EPSILON, max_residents=4
    )
    for job in placement.residents[busiest]:
        controller.admit(job, deadline_of[job])

    arrival = next(
        int(w) for w in range(dataset.n_workloads) if w not in jobs
    )
    arrival_deadline = 3.0 * float(
        np.median(dataset.runtime[dataset.w_idx == arrival])
    )
    decision = controller.check(arrival, arrival_deadline)
    verdict = "ADMIT" if decision.admitted else f"REJECT ({decision.reason})"
    print(f"\nlate arrival {dataset.workloads[arrival].name} asking "
          f"{dataset.platforms[busiest].name}: {verdict}"
          + (f", budget {decision.budget*1e3:.2f} ms" if decision.admitted else ""))


if __name__ == "__main__":
    main()
