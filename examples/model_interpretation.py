"""Model interpretation: embedding clusters and interference structure.

Reproduces the analyses behind Sec 5.4 / App D.4 interactively: t-SNE
layouts of workload/platform embeddings with cluster-purity scores, and
the learned-vs-measured interference correlation (Fig 12d) — an ASCII
scatter stands in for the paper's plots.

    python examples/model_interpretation.py
"""

import numpy as np

from repro import (
    PitotConfig,
    TrainerConfig,
    collect_dataset,
    make_split,
    train_pitot,
)
from repro.analysis import cluster_report, norm_vs_interference, tsne


def ascii_scatter(x, y, labels, width=60, height=16):
    """Minimal ASCII scatter plot with one glyph per label."""
    glyphs = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    lx = (x - x.min()) / max(x.max() - x.min(), 1e-12)
    ly = (y - y.min()) / max(y.max() - y.min(), 1e-12)
    unique = sorted(set(labels))
    for xi, yi, label in zip(lx, ly, labels):
        row = height - 1 - int(yi * (height - 1))
        col = int(xi * (width - 1))
        grid[row][col] = glyphs[unique.index(label) % len(glyphs)]
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={u}" for i, u in enumerate(unique)
    )
    return "\n".join("".join(row) for row in grid) + "\n" + legend


def main() -> None:
    print("collecting dataset + training Pitot...")
    dataset = collect_dataset(
        seed=0, n_workloads=60, n_devices=8, n_runtimes=5, sets_per_degree=40
    )
    split = make_split(dataset, train_fraction=0.6, seed=0)
    model = train_pitot(
        split.train, split.calibration,
        model_config=PitotConfig(hidden=(64, 64)),
        trainer_config=TrainerConfig(steps=1000, batch_per_degree=256, seed=0),
    ).model

    # --- Fig 7: workload embeddings by suite --------------------------
    suites = [w.suite for w in dataset.workloads]
    layout = tsne(model.workload_embeddings(), perplexity=15, n_iter=350, seed=0)
    report = cluster_report(layout, np.array(suites), k=5, seed=0)
    print("\nFig 7 — workload embedding t-SNE by benchmark suite "
          f"(kNN agreement {report['agreement']:.2f}, "
          f"null {report['null_mean']:.2f}, {report['sigma']:.1f} sigma):")
    print(ascii_scatter(layout[:, 0], layout[:, 1], suites))

    # --- Fig 12b: platform embeddings by runtime mode ------------------
    modes = [p.runtime.mode.value for p in dataset.platforms]
    p_layout = tsne(model.platform_embeddings(), perplexity=8, n_iter=350, seed=0)
    p_report = cluster_report(p_layout, np.array(modes), k=4, seed=0)
    print("\nFig 12b — platform embedding t-SNE by execution mode "
          f"(kNN agreement {p_report['agreement']:.2f}, "
          f"{p_report['sigma']:.1f} sigma):")
    print(ascii_scatter(p_layout[:, 0], p_layout[:, 1], modes))

    # --- Fig 12d: learned vs measured interference ---------------------
    result = norm_vs_interference(model.interference_matrices(), dataset)
    valid = ~np.isnan(result["measured"])
    print(f"\nFig 12d — learned ||F_j|| vs measured mean interference "
          f"(pearson {result['pearson']:.2f}, "
          f"spearman {result['spearman']:.2f}):")
    isa = [dataset.platforms[j].device.isa.value
           for j in np.flatnonzero(valid)]
    print(ascii_scatter(
        np.log10(np.maximum(result["norms"][valid], 1e-3)),
        result["measured"][valid],
        isa,
    ))


if __name__ == "__main__":
    main()
