"""Deployment lifecycle: phase shifts and drift after the model ships.

The paper's assumptions and future work meet reality here: a deployed
predictor faces (1) workloads whose input distribution changes — a phase
shift that Sec 3.1 assumes is "identified externally" — and (2) platform
drift (thermal throttling), which Sec 6 leaves to "efficient online
learning". This example runs both defenses:

* the CUSUM phase detector splits a workload's history when its runtime
  level shifts, so the new phase can be treated as a new workload;
* the sliding-window online conformalizer restores bound coverage after
  a platform slows down, without retraining.

    python examples/deployment_lifecycle.py
"""

import numpy as np

from repro import (
    PAPER_QUANTILES,
    ConformalRuntimePredictor,
    OnlineConformalizer,
    PitotConfig,
    TrainerConfig,
    collect_dataset,
    coverage,
    make_split,
    train_pitot,
)
from repro.workloads import detect_phase_shifts, split_phases


def main() -> None:
    print("collecting dataset + training quantile Pitot...")
    dataset = collect_dataset(
        seed=0, n_workloads=60, n_devices=8, n_runtimes=5, sets_per_degree=40
    )
    split = make_split(dataset, train_fraction=0.6, seed=0)
    result = train_pitot(
        split.train, split.calibration,
        model_config=PitotConfig(hidden=(64, 64), quantiles=PAPER_QUANTILES),
        trainer_config=TrainerConfig(steps=600, batch_per_degree=192, seed=0),
    )
    static = ConformalRuntimePredictor(
        result.model, quantiles=PAPER_QUANTILES, strategy="pitot"
    ).calibrate(split.calibration, epsilons=(0.1,))

    # ------------------------------------------------------------------
    # 1. Phase shift: a deployed workload's input distribution changes,
    #    so its repeated executions on ONE platform jump 2.5x. The
    #    monitor watches the per-placement runtime stream; the detector
    #    flags the shift so the orchestrator can re-profile the new phase
    #    as a new workload (Sec 3.1 assumption).
    # ------------------------------------------------------------------
    rng = np.random.default_rng(3)
    workload, platform = 12, 5
    pair_rows = np.flatnonzero(
        (dataset.w_idx == workload) & (dataset.p_idx == platform)
        & dataset.isolation_mask()
    )
    base_log = float(np.log(dataset.runtime[pair_rows]).mean())
    # Monitored stream: 80 executions, then the input distribution changes.
    history = np.concatenate([
        rng.normal(base_log, 0.04, 80),
        rng.normal(base_log + np.log(2.5), 0.04, 80),
    ])
    segments = detect_phase_shifts(history)
    print(f"\nphase detection for {dataset.workloads[workload].name} on "
          f"{dataset.platforms[platform].name}:")
    for seg in segments:
        print(f"  executions [{seg.start:3d}, {seg.end:3d}): "
              f"mean runtime {np.exp(seg.mean_log_runtime)*1e3:8.2f} ms")
    ids = split_phases(
        np.full(len(history), workload), np.arange(len(history)), history
    )
    print(f"  -> history split into workload ids {sorted(set(ids.tolist()))} "
          "(new phase becomes a new workload, per Sec 3.1)")

    # ------------------------------------------------------------------
    # 2. Platform drift: everything runs 1.5x slower from now on.
    #    The static predictor's 90% budgets silently fail; the online
    #    window recovers.
    # ------------------------------------------------------------------
    test = split.test
    order = rng.permutation(test.n_observations)
    stream_rows, eval_rows = order[: len(order) // 2], order[len(order) // 2:]
    drift = 1.5
    head = static.choices[(0.1, -1)].head
    online = OnlineConformalizer(result.model, head=head, window=2000)
    cal = split.calibration
    online.observe(cal.w_idx, cal.p_idx, cal.interferers, cal.runtime)
    online.observe(
        test.w_idx[stream_rows], test.p_idx[stream_rows],
        test.interferers[stream_rows], test.runtime[stream_rows] * drift,
    )

    drifted = test.runtime[eval_rows] * drift
    static_bound = static.predict_bound(
        test.w_idx[eval_rows], test.p_idx[eval_rows],
        test.interferers[eval_rows], 0.1,
    )
    online_bound = online.predict_bound(
        test.w_idx[eval_rows], test.p_idx[eval_rows],
        test.interferers[eval_rows], 0.1,
    )
    print(f"\nplatform drift ({drift}x slowdown), 90% budgets:")
    print(f"  static conformal coverage: {coverage(static_bound, drifted):.3f}"
          "  <- silently broken")
    print(f"  online window coverage:    {coverage(online_bound, drifted):.3f}"
          "  <- restored without retraining")


if __name__ == "__main__":
    main()
